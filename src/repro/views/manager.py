"""View manager: Algorithm 1 orchestration and the view read path.

The manager owns the view registry and glues together everything a
coordinator needs when a base-table Put touches view-relevant columns
(paper Algorithm 1):

1. read the current view-key versions from the base row's replicas (all
   versions, not just the latest) — combined with the Put into one
   replica round trip when ``combined_get_then_put`` is enabled;
2. perform the base Put and acknowledge the client at W replicas;
3. hand the update to the asynchronous propagation pipeline, which
   drives ``PropagateUpdate`` (Algorithm 2), retrying over the collected
   guesses until one succeeds.

Step 3 has two implementations (``config.propagation_pipeline``):

``"outbox"`` (default)
    The Put appends a record to its coordinator node's
    :class:`~repro.views.outbox.NodeOutbox`; per-node background
    consumer processes drain the log in batches, coalescing superseded
    same-``(view, key)`` updates on the way (see :mod:`repro.views.
    outbox` for the log format and coalescing rule).  Session barriers
    use outbox offsets rather than per-Put events.

``"inline"``
    The pre-outbox behavior: one driver process spawned per Put per
    affected view, kept for comparison runs.

Concurrency control per Section IV-F is pluggable: a per-base-row lock
service (shared for materialized-column propagation, exclusive for
view-key propagation) or dedicated per-row propagators.  Locks are
released between retry rounds — holding them across a failed round would
block the very propagation that must run before the retry can succeed.
Retries back off exponentially (capped) with deterministic jitter so
contending propagations de-synchronize instead of colliding every round.

Coordinators bound their outstanding propagations
(``max_pending_propagations``); base Puts block when the backlog is full,
modelling the prototype's finite maintenance capacity.  In outbox mode
the same bound covers queued plus in-flight records, and coalescing
returns the superseded record's slot immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.common.records import Cell, ColumnName
from repro.errors import (
    CoordinatorCrashError,
    NoSuchViewError,
    PropagationDeadlineError,
    PropagationError,
    QuorumError,
    SessionError,
    ViewDefinitionError,
    ViewExistsError,
)
from repro.freshness.certificate import FreshnessTracker
from repro.freshness.read import fresh_view_get
from repro.freshness.slo import FreshnessSLO
from repro.sim.resources import Semaphore
from repro.views import read as view_read
from repro.views.definition import ViewDefinition
from repro.views.locks import LockService
from repro.views.maintenance import ViewKeyGuess, ViewMaintainer
from repro.views.outbox import NodeOutbox
from repro.views.propagators import PropagatorPool
from repro.views.session import SessionManager
from repro.views.skew import SkewService

__all__ = ["BackfillReport", "ViewManager"]


@dataclass
class BackfillReport:
    """Outcome of :meth:`ViewManager.backfill`.

    ``skipped`` lists base keys that could not be loaded because no
    replica of the row was reachable (all down, or quorum reads timed
    out) — callers re-run backfill for them, or leave them to the
    background scrubber (:mod:`repro.repair`).
    """

    loaded: int = 0
    batches: int = 0
    skipped: Tuple[Hashable, ...] = ()


class ViewManager:
    """Registry plus maintenance/read orchestration for one cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.env = cluster.env
        self.config = cluster.config
        self.maintainer = ViewMaintainer(cluster)
        self.sessions = SessionManager(cluster.env)
        self.locks = LockService(cluster.env,
                                 latency=self.config.lock_service_latency)
        self.propagators = (PropagatorPool(cluster)
                            if self.config.propagation_concurrency
                            == "propagators" else None)
        self._rng = cluster.streams.stream("view-propagation")
        self._views: Dict[str, ViewDefinition] = {}
        self._joins: Dict[str, "JoinViewDefinition"] = {}
        self._by_table: Dict[str, List[ViewDefinition]] = {}
        self._backpressure: Dict[int, Semaphore] = {}
        self._outboxes: Dict[int, NodeOutbox] = {}
        # Observability.
        self._inline_pending = 0
        self.completed_propagations = 0
        self.lost_propagations = 0
        self.abandoned_propagations = 0
        self.deadline_abandoned_propagations = 0
        self.folded_propagations = 0
        self.read_stats = view_read.ViewReadStats()
        # Fault-injection hooks (ChaosMonkey.crash_during_propagation):
        # consulted once per consumed record (or per inline driver),
        # after the scheduling delay but before Algorithm 2 runs; a hook
        # returning True crashes the coordinator, losing the propagation.
        self._crash_hooks: List[Callable] = []
        if self.config.propagation_pipeline == "outbox":
            # One log per node, drained by its own consumer pool.  Idle
            # consumers block on unscheduled events, so they never keep
            # run_until_idle() alive.
            for node in cluster.nodes:
                outbox = NodeOutbox(
                    self.env, node.node_id,
                    capacity=self.config.max_pending_propagations)
                self._outboxes[node.node_id] = outbox
                for index in range(self.config.outbox_consumers):
                    self.env.process(
                        self._consume_outbox(outbox),
                        name=f"outbox-consumer:{node.node_id}:{index}")
        # Skew-adaptive maintenance + hot-view cache (repro.views.skew);
        # inert (no processes, no cache) unless configured on.
        self.skew = SkewService(self)
        if self.skew.cache.enabled:
            self.maintainer.on_view_write = self.skew.cache.invalidate
        # Freshness subsystem (repro.freshness): staleness certificates
        # derived from outbox/fold/inline/wound metadata, plus the SLO
        # accounting for bounded-staleness reads.
        self.freshness = FreshnessTracker(self)
        self.freshness_slo = FreshnessSLO()

    @property
    def pending_propagations(self) -> int:
        """Propagations accepted but not yet resolved (queued, in-flight,
        or folded into an unflushed delta), across both pipelines."""
        return (self._inline_pending
                + sum(outbox.depth for outbox in self._outboxes.values())
                + self.skew.pending_chains())

    # -- registry -----------------------------------------------------------

    def register(self, definition: ViewDefinition) -> None:
        """Register a view and create its backing table."""
        if definition.name in self._views:
            raise ViewExistsError(definition.name)
        if definition.base_table in self._views:
            raise ViewDefinitionError(
                f"base table {definition.base_table!r} is itself a view; "
                "views on views are not supported")
        if not self.cluster.has_table(definition.base_table):
            raise ViewDefinitionError(
                f"base table {definition.base_table!r} does not exist")
        if self.cluster.has_table(definition.name):
            raise ViewDefinitionError(
                f"a table named {definition.name!r} already exists")
        self.cluster.create_table(definition.name)
        self._views[definition.name] = definition
        self._by_table.setdefault(definition.base_table, []).append(definition)

    def view(self, name: str) -> ViewDefinition:
        """Look up a registered view by name."""
        try:
            return self._views[name]
        except KeyError:
            raise NoSuchViewError(name) from None

    def is_view(self, name: str) -> bool:
        """True if ``name`` is a registered view."""
        return name in self._views

    def view_names(self) -> List[str]:
        """All registered view names."""
        return list(self._views)

    def views_on(self, table: str) -> List[ViewDefinition]:
        """The views defined on ``table``."""
        return list(self._by_table.get(table, ()))

    # -- equi-join views (Section III extension) ---------------------------------

    def register_join(self, definition) -> None:
        """Register an equi-join view (two projection child views)."""
        if definition.name in self._joins or definition.name in self._views:
            raise ViewExistsError(definition.name)
        left, right = definition.child_definitions()
        self.register(left)
        self.register(right)
        self._joins[definition.name] = definition

    def join_view(self, name: str):
        """Look up a registered join view by name."""
        try:
            return self._joins[name]
        except KeyError:
            raise NoSuchViewError(name) from None

    def join_get(self, coordinator, join_name: str, join_key,
                 left_columns: Tuple[ColumnName, ...],
                 right_columns: Tuple[ColumnName, ...], r: int,
                 session=None):
        """Read matched pairs of a join view for one join-key value.

        Two single-partition view Gets (both child views are keyed by
        the join key) plus in-coordinator pairing — the PNUTS locality
        property for remote view tables.
        """
        from repro.views.joins import pair_results

        definition = self.join_view(join_name)
        left_rows = yield from self.view_get(
            coordinator, definition.left_view_name, join_key,
            tuple(left_columns), r, session=session)
        right_rows = yield from self.view_get(
            coordinator, definition.right_view_name, join_key,
            tuple(right_columns), r, session=session)
        return pair_results(join_key, left_rows, right_rows)

    def views_affected(self, table: str, cells: Dict[ColumnName, Any]) -> bool:
        """True if a Put touching ``cells`` requires any propagation."""
        return any(view.affects(cells) for view in self.views_on(table))

    # -- Algorithm 1: base Put with update propagation ------------------------

    def base_put(self, coordinator, table: str, key: Hashable,
                 cells: Dict[ColumnName, Cell], w: int, session=None):
        """Put with propagation; returns after W base-replica acks.

        Propagation to each affected view continues asynchronously; with
        ``session`` the completion events are registered for the
        Section V guarantee.
        """
        affected = [view for view in self.views_on(table)
                    if view.affects(cells)]
        if not affected:
            yield from coordinator.put(table, key, cells, w)
            return

        yield from coordinator.node._use_cpu(self.config.service.coordinator)
        read_columns = tuple(dict.fromkeys(
            view.view_key_column for view in affected))

        if self.config.combined_get_then_put:
            # Single round trip: each replica reads its pre-update view
            # keys and applies the write atomically.
            collector = coordinator.scatter_get_then_put(
                table, key, cells, read_columns, w)
            yield collector.wait(w)

            def extract(response, column):
                return response.pre_cells.get(column)
        else:
            # The prototype's two-step path (Alg. 1 lines 2-3): Get the
            # current view keys, then Put.
            collector = coordinator.scatter_read(table, key, read_columns, w)
            yield collector.wait(w)
            put_collector = coordinator.scatter_write(table, key, cells, w)
            yield put_collector.wait(w)

            def extract(response, column):
                return response.cells.get(column)

        base_ts = max(cell.timestamp for cell in cells.values())
        self.cluster.trace("base_put", "acked; scheduling propagation",
                           table=table, key=key, ts=base_ts,
                           views=[view.name for view in affected])
        if self._outboxes:
            outbox = self._outboxes[coordinator.node.node_id]
            for view in affected:
                # Back-pressure: block the Put while the node's outbox
                # (queued + in-flight records) is full.
                yield outbox.backpressure.acquire()
                # The completion event resolves when the record's
                # propagation does; session barriers use the outbox
                # offset instead, so nobody is obligated to consume it.
                completion = self.env.event().defuse()
                before = outbox.coalesced
                record = outbox.append(
                    view, table, key, self._update_values(view, cells),
                    base_ts, (collector, extract), completion)
                if outbox.coalesced != before:
                    self.cluster.trace(
                        "outbox", "coalesced superseded update",
                        view=view.name, key=key, seq=record.seq)
                if session is not None:
                    self.sessions.register_offset(session, view.name,
                                                  outbox, record.seq)
            return
        backpressure = self._backpressure_for(coordinator.node.node_id)
        for view in affected:
            # Back-pressure: block the Put while the coordinator's
            # propagation backlog is full.
            yield backpressure.acquire()
            completion = self.env.event()
            if session is not None:
                self.sessions.register(session, view.name, completion)
            else:
                # Nobody is obligated to consume the completion event.
                completion.defuse()
            # Staleness clock starts at the ack, not at driver startup.
            origin = self.env.now
            pending_token = self.freshness.open_pending(view.name, key)
            self.env.process(
                self._propagation_driver(coordinator, view, table, key,
                                         cells, base_ts, collector, extract,
                                         completion, backpressure,
                                         pending_token, origin),
                name=f"propagate:{view.name}:{key!r}")

    def _backpressure_for(self, coordinator_id: int) -> Semaphore:
        semaphore = self._backpressure.get(coordinator_id)
        if semaphore is None:
            semaphore = Semaphore(self.env,
                                  tokens=self.config.max_pending_propagations)
            self._backpressure[coordinator_id] = semaphore
        return semaphore

    # -- fault injection -----------------------------------------------------

    def add_crash_hook(self, hook: Callable) -> None:
        """Arm ``hook(coordinator, view, base_key, base_ts) -> bool``.

        Consulted once per asynchronous propagation — by the outbox
        consumer after it has claimed the record (or by the inline
        driver), once the view-key collection settles and the scheduling
        delay elapses but before Algorithm 2 runs.  That is the window
        in which a real coordinator crash silently loses the
        propagation: the record is already out of the log, the view not
        yet written.  A hook returning True raises
        :class:`~repro.errors.CoordinatorCrashError` there, which counts
        the propagation as lost (``lost_propagations``) instead of
        escalating.
        """
        self._crash_hooks.append(hook)

    def remove_crash_hook(self, hook: Callable) -> None:
        """Disarm a hook registered with :meth:`add_crash_hook`."""
        try:
            self._crash_hooks.remove(hook)
        except ValueError:
            pass

    def _maybe_crash(self, coordinator, view: ViewDefinition,
                     key: Hashable, base_ts: int) -> None:
        for hook in list(self._crash_hooks):
            if hook(coordinator, view, key, base_ts):
                raise CoordinatorCrashError(
                    f"coordinator {coordinator.node.node_id} crashed before "
                    f"propagating base key {key!r} (ts {base_ts}) to view "
                    f"{view.name!r}")

    # -- outbox pipeline ----------------------------------------------------

    @staticmethod
    def _update_values(view: ViewDefinition,
                       cells: Dict[ColumnName, Cell]) -> Dict[ColumnName, Any]:
        """A Put's watched columns as raw values (None for tombstones)."""
        return {
            column: (None if cell.tombstone else cell.value)
            for column, cell in cells.items()
            if column in view.watched_columns
        }

    def _consume_outbox(self, outbox: NodeOutbox):
        """One background consumer: drain the node's log in batches."""
        while True:
            batch = yield from outbox.next_batch(self.config.outbox_batch_size)
            for record in batch:
                yield from self._process_record(outbox, record)

    def _process_record(self, outbox: NodeOutbox, record):
        """Propagate one claimed outbox record (Algorithm 1 lines 4-7)."""
        view, key, base_ts = record.view, record.key, record.base_ts
        try:
            # Gather guesses from every source round trip (Alg. 1:
            # propagation starts only after the Get has heard from all
            # copies of the base row, or timed out).  A coalesced record
            # carries its riders' sources too, widening the guess set.
            gathered = []
            for collector, extract in record.sources:
                responses = yield collector.settled
                gathered.append((responses, extract))
            # Heavy/light fork (repro.views.skew): records for heavy
            # chains fold into a per-chain delta — no scheduling delay,
            # no locks, no chain walk — and resolve immediately, so the
            # backpressure token returns at once.  The fold invalidates
            # the hot-view cache for every key the record could move
            # before resolving, keeping session barriers honest.
            if self.skew.should_fold(outbox.node_id, view, key):
                self.skew.fold(outbox.node_id, record, gathered)
                self.folded_propagations += 1
                self.cluster.trace("propagation", "folded into skew delta",
                                   view=view.name, key=key, ts=base_ts)
                record.resolve()
                return
            # Scheduling delay: maintenance work queues behind other
            # maintenance work.
            yield self.env.timeout(
                self.config.propagation_delay.sample(self._rng))
            coordinator = self.cluster.coordinator(outbox.node_id)
            self._maybe_crash(coordinator, view, key, base_ts)

            seen: Dict[Any, ViewKeyGuess] = {}
            for responses, extract in gathered:
                for response in responses:
                    cell = extract(response, view.view_key_column)
                    self._merge_guess(seen, ViewKeyGuess.from_cell(view, cell))
            guesses = sorted(seen.values(),
                             key=lambda g: g.timestamp, reverse=True)
            origin = record.appended_at
            self.freshness.eager_begin(view.name, key, outbox.node_id,
                                       origin, base_ts)
            success = False
            try:
                yield from self._propagate_with_retries(
                    coordinator, view, record.table, key, guesses,
                    record.update_values, base_ts, started_at=origin)
                success = True
            finally:
                self.freshness.eager_end(view.name, key, outbox.node_id,
                                         origin, base_ts, success)
            self.completed_propagations += 1
            self.cluster.trace("propagation", "completed", view=view.name,
                               key=key, ts=base_ts)
            record.resolve()
        except CoordinatorCrashError as exc:
            # The record was claimed before processing (at-most-once):
            # the crash models a coordinator dying with the propagation
            # only in its volatile state, so the work is simply lost (no
            # retry, no escalation) — exactly the divergence the repair
            # subsystem (repro.repair) exists to detect and heal.
            self.lost_propagations += 1
            self.freshness.note_wound(view.name, key, record.appended_at,
                                      "crash-lost")
            self.cluster.trace("propagation", "lost to coordinator crash",
                               view=view.name, key=key, ts=base_ts)
            record.resolve(exc)
        except PropagationDeadlineError as exc:
            # Deadline abandonment: the mitigation for the hot-chain
            # guess-retry livelock — give the token back instead of
            # spinning out the round budget; the scrubber heals the row.
            self.abandoned_propagations += 1
            self.deadline_abandoned_propagations += 1
            self.freshness.note_wound(view.name, key, record.appended_at,
                                      "deadline-abandoned")
            self.cluster.trace("propagation", "abandoned by deadline",
                               view=view.name, key=key, ts=base_ts)
            record.resolve(exc)
        except PropagationError as exc:
            # Retries exhausted: the chain entry point this propagation
            # needs never appeared — e.g. its predecessor's propagation
            # was itself lost to a crash, so no guess is ever valid.
            # Give up quietly; the row is now diverged and the scrubber
            # re-drives it from the NULL anchor.
            self.abandoned_propagations += 1
            self.freshness.note_wound(view.name, key, record.appended_at,
                                      "retries-abandoned")
            self.cluster.trace("propagation", "abandoned after retries",
                               view=view.name, key=key, ts=base_ts)
            record.resolve(exc)
        except Exception as exc:
            record.resolve(exc)
            raise
        finally:
            outbox.done(record)
            outbox.backpressure.release()

    def outbox_pending(self, view_name: Optional[str] = None) -> int:
        """Unresolved outbox records, optionally for one view only.

        The scrubber consults this to defer digest comparison while
        propagation is merely behind (backlog, not divergence) — folded
        deltas awaiting a flush count as backlog too: lazy maintenance
        is lag, never divergence."""
        if view_name is None:
            return (sum(outbox.depth for outbox in self._outboxes.values())
                    + self.skew.pending_chains())
        return (sum(outbox.pending_for(view_name)
                    for outbox in self._outboxes.values())
                + self.skew.pending_chains(view_name))

    def outbox_stats(self, hot_key_count: int = 5) -> Dict[str, Any]:
        """Queue depth / lag / coalescing counters across node outboxes.

        ``hot_keys`` ranks the most-appended (view, base key) chains —
        the producer-side ground truth for auditing the skew tracker's
        heavy/light classification."""
        appended = sum(o.appended for o in self._outboxes.values())
        coalesced = sum(o.coalesced for o in self._outboxes.values())
        hot: Dict[Tuple[str, Hashable], int] = {}
        for o in self._outboxes.values():
            for chain, count in o.chain_appends.items():
                hot[chain] = hot.get(chain, 0) + count
        ranked = sorted(hot.items(),
                        key=lambda item: (-item[1], repr(item[0])))
        return {
            "appended": appended,
            "coalesced": coalesced,
            "coalesce_ratio": (coalesced / appended) if appended else 0.0,
            "depth": sum(o.depth for o in self._outboxes.values()),
            "max_depth": max(
                (o.max_depth for o in self._outboxes.values()), default=0),
            "lag": sum(o.lag for o in self._outboxes.values()),
            "folded": self.folded_propagations,
            "hot_keys": [
                {"view": chain[0], "key": chain[1], "appends": count}
                for chain, count in ranked[:hot_key_count]
            ],
            "per_node": {
                node_id: {
                    "appended": o.appended,
                    "coalesced": o.coalesced,
                    "depth": o.depth,
                    "max_depth": o.max_depth,
                    "low_watermark": o.low_watermark,
                    "lag": o.lag,
                }
                for node_id, o in sorted(self._outboxes.items())
            },
        }

    def skew_stats(self) -> Dict[str, Any]:
        """Heavy/light maintenance and hot-view cache counters."""
        stats = self.skew.stats()
        stats["folded_propagations"] = self.folded_propagations
        return stats

    # -- inline propagation driver (propagation_pipeline="inline") ---------------

    def _propagation_driver(self, coordinator, view: ViewDefinition,
                            table: str, key: Hashable,
                            cells: Dict[ColumnName, Cell], base_ts: int,
                            collector, extract, completion, backpressure,
                            pending_token: Optional[int] = None,
                            origin: Optional[float] = None):
        self._inline_pending += 1
        if origin is None:
            origin = self.env.now
        executor = ("inline", pending_token)
        try:
            # Keep collecting view keys from the remaining replicas
            # (Alg. 1: propagation starts only after the Get has heard
            # from all copies of the base row, or timed out).
            responses = yield collector.settled
            # Scheduling delay: maintenance work queues behind other
            # maintenance work.
            yield self.env.timeout(
                self.config.propagation_delay.sample(self._rng))
            self._maybe_crash(coordinator, view, key, base_ts)

            update_values = self._update_values(view, cells)
            guesses = self._guesses(view, responses, extract)
            self.freshness.eager_begin(view.name, key, executor, origin,
                                       base_ts)
            success = False
            try:
                yield from self._propagate_with_retries(
                    coordinator, view, table, key, guesses, update_values,
                    base_ts, started_at=origin)
                success = True
            finally:
                self.freshness.eager_end(view.name, key, executor, origin,
                                         base_ts, success)
            self.completed_propagations += 1
            self.cluster.trace("propagation", "completed", view=view.name,
                               key=key, ts=base_ts)
            completion.succeed()
        except CoordinatorCrashError as exc:
            # The injected crash models a coordinator dying with the
            # propagation only in its volatile state: the work is simply
            # lost (no retry, no escalation) — exactly the divergence the
            # repair subsystem (repro.repair) exists to detect and heal.
            self.lost_propagations += 1
            self.freshness.note_wound(view.name, key, origin, "crash-lost")
            self.cluster.trace("propagation", "lost to coordinator crash",
                               view=view.name, key=key, ts=base_ts)
            if not completion.triggered:
                completion.defuse()
                completion.fail(exc)
        except PropagationDeadlineError as exc:
            self.abandoned_propagations += 1
            self.deadline_abandoned_propagations += 1
            self.freshness.note_wound(view.name, key, origin,
                                      "deadline-abandoned")
            self.cluster.trace("propagation", "abandoned by deadline",
                               view=view.name, key=key, ts=base_ts)
            if not completion.triggered:
                completion.defuse()
                completion.fail(exc)
        except PropagationError as exc:
            # Retries exhausted: the chain entry point this propagation
            # needs never appeared — e.g. its predecessor's propagation
            # was itself lost to a crash, so no guess is ever valid.
            # Give up quietly; the row is now diverged and the scrubber
            # re-drives it from the NULL anchor.
            self.abandoned_propagations += 1
            self.freshness.note_wound(view.name, key, origin,
                                      "retries-abandoned")
            self.cluster.trace("propagation", "abandoned after retries",
                               view=view.name, key=key, ts=base_ts)
            if not completion.triggered:
                completion.defuse()
                completion.fail(exc)
        except Exception as exc:
            if not completion.triggered:
                completion.defuse()
                completion.fail(exc)
            raise
        finally:
            backpressure.release()
            self._inline_pending -= 1
            if pending_token is not None:
                self.freshness.close_pending(pending_token)

    @staticmethod
    def _merge_guess(seen: Dict[Any, ViewKeyGuess],
                     guess: ViewKeyGuess) -> None:
        """Deduplicate by key, keeping the max timestamp and preserving
        the pristine-NULL property: if ANY replica reported the view key
        as never-written, the NULL guess keeps its virtual-anchor
        fallback even when another replica already shows this update's
        own tombstone."""
        existing = seen.get(guess.key)
        if existing is None:
            seen[guess.key] = guess
        else:
            seen[guess.key] = ViewKeyGuess(
                guess.key,
                max(existing.timestamp, guess.timestamp),
                existing.allow_virtual or guess.allow_virtual)

    def _guesses(self, view: ViewDefinition, responses,
                 extract) -> List[ViewKeyGuess]:
        """Distinct view-key guesses, most recent timestamp first."""
        seen: Dict[Any, ViewKeyGuess] = {}
        for response in responses:
            cell = extract(response, view.view_key_column)
            self._merge_guess(seen, ViewKeyGuess.from_cell(view, cell))
        return sorted(seen.values(), key=lambda g: g.timestamp, reverse=True)

    def _propagate_with_retries(self, coordinator, view: ViewDefinition,
                                table: str, key: Hashable,
                                guesses: List[ViewKeyGuess],
                                update_values: Dict[ColumnName, Any],
                                base_ts: int,
                                started_at: Optional[float] = None):
        """Algorithm 1 lines 5-7: retry guesses until one propagates.

        ``started_at`` is when the update entered the pipeline; with
        ``propagation_deadline_ms`` configured, retrying past the
        deadline raises :class:`PropagationDeadlineError` (the first
        attempt always runs, even for a record consumed late).
        """
        exclusive = view.view_key_column in update_values
        mode = self.config.propagation_concurrency
        deadline = self.config.propagation_deadline_ms
        rounds = 0
        while True:
            rounds += 1
            if rounds > self.config.propagation_max_rounds:
                raise PropagationError(
                    f"update for base key {key!r} could not be propagated "
                    f"to view {view.name!r} after {rounds - 1} rounds")
            if (deadline > 0 and started_at is not None and rounds > 1
                    and self.env.now - started_at >= deadline):
                raise PropagationDeadlineError(
                    f"update for base key {key!r} exceeded the "
                    f"{deadline:g} ms propagation deadline for view "
                    f"{view.name!r} (age {self.env.now - started_at:.1f} ms "
                    f"after {rounds - 1} rounds)")
            if mode == "locks":
                yield from self.locks.acquire(view.name, key, exclusive)
                try:
                    success = yield from self._attempt_round(
                        coordinator, view, key, guesses, update_values,
                        base_ts)
                finally:
                    self.locks.release(view.name, key, exclusive)
            elif mode == "propagators":
                def job(propagation_coordinator):
                    return self._attempt_round(
                        propagation_coordinator, view, key, guesses,
                        update_values, base_ts)

                success = yield self.propagators.submit(
                    coordinator.node.node_id, view.name, key, job)
            else:
                success = yield from self._attempt_round(
                    coordinator, view, key, guesses, update_values, base_ts)
            if success:
                return
            self.maintainer.metrics.retry_rounds += 1
            self.cluster.trace("propagation", "round failed; backing off",
                               view=view.name, key=key, round=rounds)
            yield self.env.timeout(self._retry_delay(rounds))
            if rounds % 4 == 0:
                # Refresh guesses from the base replicas: slow peers may
                # have propagated by now, giving us a valid entry point.
                fresh = yield from self._refresh_guesses(
                    coordinator, view, table, key)
                merged: Dict[Any, ViewKeyGuess] = {}
                for guess in (*guesses, *fresh):
                    self._merge_guess(merged, guess)
                guesses[:] = sorted(merged.values(),
                                    key=lambda g: g.timestamp, reverse=True)

    def _retry_delay(self, rounds: int) -> float:
        """Backoff before retry round ``rounds + 1``: exponential from
        ``propagation_retry_backoff``, capped at
        ``propagation_retry_backoff_cap``, jittered into ``[d/2, d)`` by
        the deterministic sim RNG.  A fixed interval would retry every
        contending propagation in lockstep, re-colliding on the same
        lock/chain state each round; the jitter spreads the wakeups."""
        base = self.config.propagation_retry_backoff
        if base <= 0:
            return 0.0
        delay = min(base * (2.0 ** (rounds - 1)),
                    self.config.propagation_retry_backoff_cap)
        return delay * (0.5 + 0.5 * self._rng.random())

    def _attempt_round(self, coordinator, view: ViewDefinition,
                       key: Hashable, guesses: List[ViewKeyGuess],
                       update_values: Dict[ColumnName, Any], base_ts: int):
        """Try each guess once; True on success.

        ``PropagationError`` means the guess is not (yet) a valid chain
        entry point; ``QuorumError`` means a transient replica shortfall
        (loss, timeout) during an internal view Get/Put.  Both cases are
        retried on a later round — Algorithm 2's writes are idempotent,
        so re-running a partially applied propagation is safe.
        """
        for guess in guesses:
            try:
                yield from self.maintainer.propagate_update(
                    coordinator, view, key, guess, update_values, base_ts)
                return True
            except (PropagationError, QuorumError):
                continue
        return False

    def _refresh_guesses(self, coordinator, view: ViewDefinition,
                         table: str, key: Hashable):
        collector = coordinator.scatter_read(
            table, key, (view.view_key_column,), 1)
        responses = yield collector.settled
        fresh: List[ViewKeyGuess] = []
        for response in responses:
            cell = response.cells.get(view.view_key_column)
            fresh.append(ViewKeyGuess.from_cell(view, cell))
        return fresh

    # -- view reads (Algorithm 4 + Section V) ---------------------------------------

    def view_get(self, coordinator, view_name: str, view_key: Any,
                 columns: Tuple[ColumnName, ...], r: int, session=None):
        """Read live rows for ``view_key``; blocks on session barriers."""
        view = self.view(view_name)
        yield from self._read_barrier(coordinator, view, view_key, session)
        results = yield from self._view_get_inner(coordinator, view,
                                                  view_key, columns, r)
        return results

    def view_get_fresh(self, coordinator, view_name: str, view_key: Any,
                       columns: Tuple[ColumnName, ...], r: int,
                       max_staleness_ms: Optional[float] = None,
                       session=None):
        """Bounded-staleness view read (repro.freshness).

        Returns a :class:`~repro.freshness.read.FreshViewRead`: the live
        rows plus the staleness certificate they were served under.
        With ``max_staleness_ms`` set, a certificate over the bound
        escalates to a base-table compensation read for the lagging
        keys; ``None`` attaches the certificate without ever escalating.
        """
        result = yield from fresh_view_get(
            self, coordinator, view_name, view_key, tuple(columns), r,
            max_staleness_ms, session)
        return result

    def _read_barrier(self, coordinator, view: ViewDefinition, view_key: Any,
                      session) -> Any:
        """Session barrier + lazy-delta flush preceding any view read."""
        if session is not None:
            if session.coordinator_id != coordinator.node.node_id:
                raise SessionError(
                    "session guarantee requires all requests to use the "
                    "session's coordinator "
                    f"(session: {session.coordinator_id}, "
                    f"request: {coordinator.node.node_id})")
            pending = session.pending_barriers(view.name)
            if pending:
                self.cluster.trace("session", "view Get blocking",
                                   view=view.name,
                                   session=session.session_id,
                                   pending=pending)
            yield from self.sessions.barrier(session, view.name)
        # Merge-on-read: lazy (heavy-key) deltas that could hide this
        # view key's live rows must materialize before the read — the
        # session barrier above only waited for records to *resolve*,
        # which for a folded record happens at fold time.
        yield from self.skew.flush_for_read(coordinator, view, view_key)

    def _view_get_inner(self, coordinator, view: ViewDefinition,
                        view_key: Any, columns: Tuple[ColumnName, ...],
                        r: int):
        """The cache + Algorithm 4 core, after barriers have run."""
        yield from coordinator.node._use_cpu(self.config.service.coordinator)
        cache = self.skew.cache
        if cache.enabled:
            cached = cache.lookup(view.name, view_key, columns, r)
            if cached is not None:
                return cached
            token = cache.version(view.name, view_key)
        results = yield from view_read.view_get(
            self.env, coordinator, view, view_key, columns, r,
            stats=self.read_stats)
        if cache.enabled:
            # Read-through populate, guarded by the version token: a
            # propagation that invalidated this key while our quorum
            # read was in flight wins — the stale result is not stored.
            cache.store(view.name, view_key, columns, r, token, results)
        return results

    def freshness_stats(self) -> Dict[str, Any]:
        """Freshness tracker + SLO + read-path counters."""
        stats = self.freshness.stats()
        stats["slo"] = self.freshness_slo.stats()
        stats["init_spins"] = self.read_stats.init_spins
        stats["init_timeouts"] = self.read_stats.init_timeouts
        stats["deadline_abandoned"] = self.deadline_abandoned_propagations
        return stats

    # -- backfill (views defined over populated tables) --------------------------------

    def backfill(self, view_name: str, coordinator_id: int = 0,
                 batch_size: int = 64, batch_pause: float = 0.0):
        """Build a view's contents from existing base rows; a process.

        Registering a view over a populated base table requires an
        initial load (the paper assumes views start correctly
        initialized).  Each base row's current view-key and materialized
        cells are propagated through the normal maintenance machinery
        (:func:`~repro.repair.repairer.repropagate_row` — backfill is a
        repair of every row against an empty view), so the resulting
        versioned view is exactly what incremental maintenance would
        have produced.

        The scan is incremental: rows are loaded in ``batch_size``
        batches with a ``batch_pause`` yield between them, so concurrent
        traffic interleaves instead of stalling behind one monolithic
        scan.  Returns a :class:`BackfillReport`; keys whose replicas
        were all unreachable are reported in ``skipped`` rather than
        silently dropped.
        """
        from repro.repair.repairer import repropagate_row  # late: no cycle

        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_pause < 0:
            raise ValueError("batch_pause must be non-negative")
        view = self.view(view_name)
        coordinator = self.cluster.coordinator(coordinator_id)
        keys = set()
        for node in self.cluster.nodes:
            if not node.is_down and node.engine.has_table(view.base_table):
                keys.update(node.engine.keys(view.base_table))
        ordered = sorted(keys, key=repr)
        report = BackfillReport()
        skipped: List[Hashable] = []
        full = min(self.config.replication_factor, self.config.nodes)
        for start in range(0, len(ordered), batch_size):
            if start:
                # Yield between batches: lets queued traffic run even at
                # a zero pause (same-instant events fire FIFO).
                yield self.env.timeout(batch_pause)
            report.batches += 1
            for key in ordered[start:start + batch_size]:
                replicas = self.cluster.replicas_for(view.base_table, key)
                alive = sum(1 for replica in replicas if not replica.is_down)
                if alive == 0:
                    skipped.append(key)
                    continue
                try:
                    # Read every reachable replica: backfill wants the
                    # freshest base state it can see.
                    loaded = yield from repropagate_row(
                        self, coordinator, view, key, r=min(full, alive))
                except QuorumError:
                    skipped.append(key)
                    continue
                if loaded:
                    report.loaded += 1
        report.skipped = tuple(skipped)
        self.cluster.trace("backfill", "completed", view=view_name,
                           loaded=report.loaded, batches=report.batches,
                           skipped=len(report.skipped))
        return report
