"""Master-based view maintenance: the PNUTS-style baseline (paper §IV-A).

The paper considers — and rejects — the alternative where each base row
has a designated *master* that serializes its updates and propagates
them to views "sequentially and in the order in which they are applied
at that master copy".  This module implements that alternative so the
two designs can be compared:

- The master of a base row is chosen by consistent hashing over the
  nodes.  All updates to the row are routed through it.
- The master assigns the update's timestamp from its own monotonic
  oracle (PNUTS timeline consistency: master arrival order *is* the
  order), applies the base Put at the requested quorum, and then
  propagates to each view asynchronously **but in order** (a per-row
  chain).
- Because propagation is ordered, the master always knows the row's
  current view key; the view needs **no versioned rows**: a key change
  writes the new live row and tombstones the old one.  The stored
  layout is the same wide-row/self-pointer format, so Algorithm 4 view
  reads work unchanged.

What the simplification costs — and why the paper rejected it — is
availability: if a row's master is down, updates to that row fail until
some failover mechanism appoints a new master (not implemented here,
exactly the machinery the paper did not want to add to a multi-master
system).  ``tests/views/test_master.py`` demonstrates both halves:
cheaper maintenance, and write unavailability under a single node
failure while the decentralized design keeps going.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

from repro.common.hashing import TokenRing
from repro.common.records import Cell, ColumnName
from repro.common.timestamps import TimestampOracle
from repro.errors import (
    NoSuchViewError,
    NodeDownError,
    ViewDefinitionError,
    ViewExistsError,
)
from repro.sim.kernel import Event
from repro.views.definition import (
    BASE_KEY_COLUMN,
    NEXT_COLUMN,
    ViewDefinition,
)
from repro.views.versioned import (
    PHASE_ROW,
    PHASE_STALE,
    view_column,
    view_timestamp,
)

__all__ = ["MasterBasedViews"]


class MasterBasedViews:
    """A self-contained master-based maintenance engine.

    Intentionally NOT wired into :class:`ClientHandle` — it is the
    comparison baseline, driven explicitly::

        masters = MasterBasedViews(cluster)
        masters.register(ViewDefinition("V", "T", "vk", ("m",)))
        yield from masters.put("T", key, {"vk": "a"}, w=1)
        rows = yield from masters.view_get(coordinator, "V", "a", ("m",), 1)
    """

    def __init__(self, cluster):
        self.cluster = cluster
        self.env = cluster.env
        self.ring = TokenRing([node.node_id for node in cluster.nodes],
                              virtual_nodes=cluster.config.virtual_nodes,
                              salt="row-masters")
        self._views: Dict[str, ViewDefinition] = {}
        self._by_table: Dict[str, List[ViewDefinition]] = {}
        # Per-master timestamp oracles (timeline consistency).
        self._oracles: Dict[int, TimestampOracle] = {}
        # Per-row serialization chains (same trick as PropagatorPool).
        self._tails: Dict[Tuple[str, Hashable], Event] = {}
        # The master's authoritative record of each row's current view
        # key per view (this is what ordered propagation buys: no
        # guessing, no stale rows).
        self._current: Dict[Tuple[str, Hashable], Any] = {}
        self.propagations = 0

    # -- registry -----------------------------------------------------------

    def register(self, definition: ViewDefinition) -> None:
        """Register a view and create its backing table."""
        if definition.name in self._views:
            raise ViewExistsError(definition.name)
        if not self.cluster.has_table(definition.base_table):
            raise ViewDefinitionError(
                f"base table {definition.base_table!r} does not exist")
        if not self.cluster.has_table(definition.name):
            self.cluster.create_table(definition.name)
        self._views[definition.name] = definition
        self._by_table.setdefault(definition.base_table, []).append(definition)

    def view(self, name: str) -> ViewDefinition:
        """Look up a registered view."""
        try:
            return self._views[name]
        except KeyError:
            raise NoSuchViewError(name) from None

    # -- mastering -------------------------------------------------------------

    def master_of(self, table: str, key: Hashable) -> int:
        """The node id mastering this base row."""
        return self.ring.primary((table, key))

    def _oracle_for(self, node_id: int) -> TimestampOracle:
        oracle = self._oracles.get(node_id)
        if oracle is None:
            # High client-id space so master timestamps never collide
            # with ordinary client oracles.
            oracle = TimestampOracle(client_id=60_000 + node_id,
                                     now_fn=lambda: self.env.now)
            self._oracles[node_id] = oracle
        return oracle

    # -- writes ---------------------------------------------------------------

    def put(self, table: str, key: Hashable, values: Dict[ColumnName, Any],
            w: int = 1):
        """Route an update through the row's master; a process.

        Raises :class:`NodeDownError` if the master is down — the
        availability cost of the design (paper §IV-A).  Returns the
        master-assigned timestamp.
        """
        master_id = self.master_of(table, key)
        master = self.cluster.node(master_id)
        if master.is_down:
            raise NodeDownError(
                f"master node {master_id} for {table!r}[{key!r}] is down "
                "(master-based maintenance has no failover)")
        # Client -> master hop.
        from repro.cluster.network import CLIENT

        yield self.env.timeout(
            self.cluster.network.one_way_delay(CLIENT, master_id))
        # Serialize behind earlier updates to this row.
        chain_key = (table, key)
        completion = self.env.event()
        previous = self._tails.get(chain_key)
        self._tails[chain_key] = completion
        if previous is not None:
            try:
                yield previous
            except Exception:
                pass
        try:
            ts = yield from self._apply_at_master(master_id, table, key,
                                                  values, w)
        except BaseException as exc:
            completion.defuse()
            completion.fail(exc)
            if self._tails.get(chain_key) is completion:
                del self._tails[chain_key]
            raise
        if self._tails.get(chain_key) is completion:
            del self._tails[chain_key]
        completion.succeed(ts)
        # Reply hop back to the client.
        yield self.env.timeout(
            self.cluster.network.one_way_delay(master_id, CLIENT))
        return ts

    def _apply_at_master(self, master_id: int, table: str, key: Hashable,
                         values: Dict[ColumnName, Any], w: int):
        coordinator = self.cluster.coordinator(master_id)
        ts = self._oracle_for(master_id).next()
        cells = {column: Cell.make(value, ts)
                 for column, value in values.items()}
        yield from coordinator.put(table, key, cells, w)
        for view in self._by_table.get(table, ()):
            if view.affects(cells):
                # Ordered, asynchronous propagation: the next update to
                # this row queues behind this propagation in the chain,
                # so view updates apply in master serialization order.
                yield from self._propagate(coordinator, view, key, values,
                                           ts)
        return ts

    def _propagate(self, coordinator, view: ViewDefinition,
                   base_key: Hashable, values: Dict[ColumnName, Any],
                   ts: int):
        """No guessing, no stale rows: the master knows the current key."""
        self.propagations += 1
        quorum = max(1, self.cluster.config.replication_factor // 2 + 1)
        state_key = (view.name, base_key)
        old_key = self._current.get(state_key)

        new_key = old_key
        if view.view_key_column in values:
            raw = values[view.view_key_column]
            new_key = raw if view.accepts_key(raw) else None

        if new_key != old_key:
            if new_key is not None:
                # Write the new live row (self-pointer + base key).
                row_cells = {
                    view_column(base_key, BASE_KEY_COLUMN):
                        Cell(base_key, view_timestamp(ts, PHASE_ROW)),
                    view_column(base_key, NEXT_COLUMN):
                        Cell(new_key, view_timestamp(ts, PHASE_ROW)),
                }
                for column in view.materialized_columns:
                    if column in values and values[column] is not None:
                        row_cells[view_column(base_key, column)] = Cell(
                            values[column], view_timestamp(ts, PHASE_ROW))
                yield from coordinator.put(view.name, new_key, row_cells,
                                           quorum)
                if old_key is not None:
                    # Carry over materialized values not in this update.
                    yield from self._copy_forward(coordinator, view,
                                                  base_key, old_key,
                                                  new_key)
            if old_key is not None:
                # Tombstone the old row outright - ordered propagation
                # guarantees nothing will ever need it again.
                dead = {
                    view_column(base_key, BASE_KEY_COLUMN):
                        Cell.make(None, view_timestamp(ts, PHASE_STALE)),
                    view_column(base_key, NEXT_COLUMN):
                        Cell.make(None, view_timestamp(ts, PHASE_STALE)),
                }
                for column in view.materialized_columns:
                    dead[view_column(base_key, column)] = Cell.make(
                        None, view_timestamp(ts, PHASE_STALE))
                yield from coordinator.put(view.name, old_key, dead, quorum)
            self._current[state_key] = new_key
        elif new_key is not None:
            # Materialized-only update to the current live row.
            materialized = {
                view_column(base_key, column):
                    Cell.make(values[column], view_timestamp(ts, PHASE_ROW))
                for column in view.materialized_columns if column in values
            }
            if materialized:
                yield from coordinator.put(view.name, new_key, materialized,
                                           quorum)

    def _copy_forward(self, coordinator, view: ViewDefinition,
                      base_key: Hashable, old_key: Any, new_key: Any):
        if not view.materialized_columns:
            return
        columns = tuple(view_column(base_key, column)
                        for column in view.materialized_columns)
        quorum = max(1, self.cluster.config.replication_factor // 2 + 1)
        merged = yield from coordinator.get(view.name, old_key, columns,
                                            quorum)
        carried = {column: cell for column, cell in merged.items()
                   if not cell.is_null}
        if carried:
            yield from coordinator.put(view.name, new_key, carried, quorum)

    # -- reads ------------------------------------------------------------------

    def view_get(self, coordinator, view_name: str, view_key: Any,
                 columns: Tuple[ColumnName, ...], r: int):
        """Algorithm 4 reads work unchanged on master-maintained views."""
        from repro.views import read as view_read

        view = self.view(view_name)
        results = yield from view_read.view_get(
            self.env, coordinator, view, view_key, tuple(columns), r)
        return results
