"""Cassandra-style native secondary indexes (the paper's SI baseline).

Each node keeps a *local index fragment* over the base rows it stores:
``indexed value -> set of base keys``.  Fragments are partitioned and
replicated by *primary* key (they index only co-located rows), which is why
the system can update them synchronously with each replica write, and why
reading through them requires broadcasting the lookup to every node and
merging the per-fragment results (paper, Sections I and VI-A).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.common.records import Cell, ColumnName

__all__ = ["LocalIndexFragment", "IndexSchema"]


class LocalIndexFragment:
    """One node's index over its local rows for a single column."""

    def __init__(self, table: str, column: ColumnName):
        self.table = table
        self.column = column
        self._postings: Dict[Any, Set[Hashable]] = {}

    def on_cell_changed(self, key: Hashable, old: Cell, new: Cell) -> None:
        """Maintain the fragment after the indexed column's cell changed.

        Called by the storage node inside the same atomic local write that
        changed the base row, which is what makes native index maintenance
        synchronous.
        """
        if not old.is_null:
            postings = self._postings.get(old.value)
            if postings is not None:
                postings.discard(key)
                if not postings:
                    del self._postings[old.value]
        if not new.is_null:
            self._postings.setdefault(new.value, set()).add(key)

    def lookup(self, value: Any) -> Set[Hashable]:
        """Base keys whose indexed column currently equals ``value``."""
        return set(self._postings.get(value, ()))

    def entry_count(self) -> int:
        """Total number of (value, key) postings in the fragment."""
        return sum(len(keys) for keys in self._postings.values())

    def rebuild(self, rows: Iterable[Tuple[Hashable, Optional[Cell]]]) -> None:
        """Rebuild the fragment from ``(key, cell)`` pairs (bootstrap)."""
        self._postings.clear()
        for key, cell in rows:
            if cell is not None and not cell.is_null:
                self._postings.setdefault(cell.value, set()).add(key)


class IndexSchema:
    """Cluster-wide registry of which columns are indexed on which tables."""

    def __init__(self):
        self._indexed: Dict[str, Set[ColumnName]] = {}

    def add(self, table: str, column: ColumnName) -> None:
        """Declare a secondary index on ``table.column``."""
        self._indexed.setdefault(table, set()).add(column)

    def columns_for(self, table: str) -> Set[ColumnName]:
        """Indexed columns of ``table`` (empty set if none)."""
        return set(self._indexed.get(table, ()))

    def is_indexed(self, table: str, column: ColumnName) -> bool:
        """True if ``table.column`` has a secondary index."""
        return column in self._indexed.get(table, ())
