"""Native secondary index baseline (per-node local fragments)."""

from repro.index.secondary_index import IndexSchema, LocalIndexFragment

__all__ = ["IndexSchema", "LocalIndexFragment"]
