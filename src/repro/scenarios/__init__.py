"""Adversarial scenario harness for the materialized-view store.

Three layers, all deterministic under one seed:

- **Adversaries** (:mod:`repro.scenarios.adversaries`): composable,
  stackable fault injectors — partition storms, slow-node gray
  failures, client clock skew, crash-loops, crash storms (the grown
  :class:`~repro.cluster.chaos.ChaosMonkey`), and arrival bursts.
- **Scenarios** (:mod:`repro.scenarios.runner`): a runner wiring a
  workload, an adversary stack, and a cluster config; after forcing
  quiescence it checks the standing invariant suite
  (:mod:`repro.scenarios.invariants`).
- **Fuzzer** (:mod:`repro.scenarios.fuzzer`): randomized op/fault
  schedules replayed deterministically from a seed, with ddmin
  shrinking of failing histories to minimal JSON reproducers.
"""

from repro.scenarios.adversaries import (
    Adversary,
    BurstArrivals,
    ClockSkew,
    CrashLoop,
    CrashStorm,
    GrayFailure,
    PartitionStorm,
)
from repro.scenarios.fuzzer import (
    FuzzFailure,
    Schedule,
    ScheduledFaults,
    ScheduleWorkload,
    fuzz,
    generate_schedule,
    load_schedule,
    replay_schedule,
    save_reproducer,
    shrink_schedule,
)
from repro.scenarios.invariants import (
    STANDING_INVARIANTS,
    BoundedQueueDepth,
    ClusterHealed,
    Invariant,
    NoLeakedLocks,
    OutboxConservation,
    SessionReadYourWrites,
    ViewOracleAgreement,
)
from repro.scenarios.runner import (
    SCENARIO_TABLE,
    SCENARIO_VIEW,
    EventBudgetExceeded,
    Scenario,
    ScenarioResult,
    default_config,
)
from repro.scenarios.workload import (
    AmbiguousOp,
    BaseWorkload,
    ScenarioWorkload,
    SessionObservation,
)

__all__ = [
    "Adversary",
    "PartitionStorm",
    "GrayFailure",
    "ClockSkew",
    "CrashLoop",
    "CrashStorm",
    "BurstArrivals",
    "Invariant",
    "ViewOracleAgreement",
    "SessionReadYourWrites",
    "OutboxConservation",
    "BoundedQueueDepth",
    "NoLeakedLocks",
    "ClusterHealed",
    "STANDING_INVARIANTS",
    "Scenario",
    "ScenarioResult",
    "EventBudgetExceeded",
    "SCENARIO_TABLE",
    "SCENARIO_VIEW",
    "default_config",
    "BaseWorkload",
    "ScenarioWorkload",
    "AmbiguousOp",
    "SessionObservation",
    "Schedule",
    "ScheduleWorkload",
    "ScheduledFaults",
    "FuzzFailure",
    "generate_schedule",
    "replay_schedule",
    "shrink_schedule",
    "fuzz",
    "save_reproducer",
    "load_schedule",
]
