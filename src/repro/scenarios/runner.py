"""The scenario runner: workload + adversary stack + invariant suite.

A :class:`Scenario` wires one cluster, one workload, and any stack of
:class:`~repro.scenarios.adversaries.Adversary` objects, runs them to
completion, forces quiescence, and then checks the standing invariant
suite (:mod:`repro.scenarios.invariants`).  The phases of ``run()``:

1. **Build** — cluster from a deterministic config (one seed fixes the
   workload, every adversary, and the network), schema ``T`` with view
   ``V`` keyed on ``vk`` materializing ``m``, background scrubber, and
   a backlog monitor that samples queue depths for the bounded-depth
   invariant.
2. **Storm** — adversaries start, the workload runs to completion
   under fire, adversaries stop (healing their own damage).
3. **Quiesce** — anything an adversary failed to heal is recorded
   (the ``ClusterHealed`` invariant reports it) and healed; the
   propagation backlog drains in bounded windows; replicas converge
   via anti-entropy; the scrubber runs until base and view agree (or
   a round cap trips); ambiguous Puts are resolved against converged
   state.
4. **Judge** — every invariant runs; the result carries violations,
   counters, and a canonical state digest
   (:func:`~repro.views.invariants.state_digest`) for differential
   and determinism checks.

A runaway history (livelock, unbounded retry storm) is cut off by an
optional kernel event budget — the fuzzer relies on this to bound
arbitrary generated schedules.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.cluster import Cluster, ClusterConfig
from repro.common.records import Cell, ColumnName
from repro.repair import divergent_base_keys
from repro.scenarios.invariants import STANDING_INVARIANTS, Invariant
from repro.scenarios.workload import BaseWorkload, ScenarioWorkload
from repro.sim.latency import Fixed
from repro.views import ReferenceViewModel, ViewDefinition, state_digest
from repro.views.model import LogicalBaseTable

__all__ = [
    "SCENARIO_TABLE",
    "SCENARIO_VIEW",
    "EventBudgetExceeded",
    "ScenarioResult",
    "Scenario",
    "default_config",
]

SCENARIO_TABLE = "T"
SCENARIO_VIEW = ViewDefinition("V", SCENARIO_TABLE, "vk", ("m",))


class EventBudgetExceeded(RuntimeError):
    """The kernel processed more events than the scenario allows."""


def default_config(*, seed: int = 0, pipeline: str = "outbox",
                   **overrides) -> ClusterConfig:
    """The scenario harness's deterministic 4-node config.

    Fixed link latencies keep runs fast and make every source of
    nondeterminism an explicit RNG stream; ``seed`` and the propagation
    ``pipeline`` are the knobs the scenario matrix sweeps.
    """
    defaults: Dict[str, Any] = dict(
        nodes=4,
        replication_factor=3,
        client_link=Fixed(0.1),
        replica_link=Fixed(0.1),
        propagation_delay=Fixed(0.05),
        propagation_pipeline=pipeline,
        seed=seed,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    name: str
    violations: List[str] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    base_digest: str = ""
    view_digest: str = ""
    digest: str = ""

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def summary(self) -> str:
        """One line for matrix reports."""
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.name}: {status}"


class Scenario:
    """One reproducible adversarial run with post-quiescence checking."""

    def __init__(self, name: str = "scenario", *,
                 config: Optional[ClusterConfig] = None,
                 workload: Optional[BaseWorkload] = None,
                 adversaries: Sequence = (),
                 invariants: Optional[Sequence[Invariant]] = None,
                 scrub: bool = True,
                 settle_window: float = 50.0,
                 max_settle_rounds: int = 60,
                 monitor_interval: float = 2.0,
                 event_budget: Optional[int] = None):
        self.name = name
        self.config = config or default_config()
        self.workload = workload or ScenarioWorkload()
        self.adversaries = list(adversaries)
        self.invariants = (list(invariants) if invariants is not None
                           else list(STANDING_INVARIANTS))
        self.scrub = scrub
        self.settle_window = settle_window
        self.max_settle_rounds = max_settle_rounds
        self.monitor_interval = monitor_interval
        self.event_budget = event_budget
        self.view = SCENARIO_VIEW
        self.cluster: Optional[Cluster] = None
        # Live workload <-> adversary coupling points.
        self.client_ids: set = set()
        self.arrival_scale = 1.0
        # Monitor peaks (see _monitor()).
        self.max_pending_seen = 0
        self.max_locks_seen = 0
        # Damage the runner (not its adversary) had to heal at
        # quiescence; the ClusterHealed invariant reports these.
        self.unhealed: List[str] = []
        self._monitor_stop = False
        self._events_seen = 0
        self._oracle: Optional[ReferenceViewModel] = None

    # -- construction --------------------------------------------------------

    def build(self) -> Cluster:
        """Create (once) the cluster, schema, and view."""
        if self.cluster is None:
            self.cluster = Cluster(self.config)
            self.cluster.create_table(SCENARIO_TABLE)
            self.cluster.create_view(self.view)
        return self.cluster

    # -- the run -------------------------------------------------------------

    def run(self) -> ScenarioResult:
        """Execute the scenario end to end and judge the invariants."""
        cluster = self.build()
        env = cluster.env
        if self.event_budget is not None:
            env.set_event_watcher(self._count_event)
        scrubber = cluster.start_scrubber() if self.scrub else None
        env.process(self._monitor(), name="scenario-monitor")

        for index, adversary in enumerate(self.adversaries):
            adversary.label = f"{adversary.name}#{index}"
        try:
            for adversary in self.adversaries:
                adversary.start(self)
            workload_process = env.process(self.workload.run(self),
                                           name="scenario-workload")
            env.run(until=workload_process)
            for adversary in reversed(self.adversaries):
                adversary.stop(self)
            self._quiesce(scrubber)
        except EventBudgetExceeded as exc:
            self._monitor_stop = True
            return ScenarioResult(
                name=self.name,
                violations=[f"event-budget: {exc}"],
                stats=self._stats(scrubber),
            )
        return self._judge(scrubber)

    def _count_event(self, _event) -> None:
        self._events_seen += 1
        if self._events_seen > self.event_budget:
            raise EventBudgetExceeded(
                f"scenario {self.name!r} exceeded its event budget of "
                f"{self.event_budget} (livelock or retry storm?)")

    def _monitor(self):
        """Sample queue depths; peaks feed BoundedQueueDepth."""
        cluster = self.cluster
        env = cluster.env
        manager = cluster.view_manager
        while not self._monitor_stop:
            yield env.timeout(self.monitor_interval)
            self.max_pending_seen = max(self.max_pending_seen,
                                        manager.pending_propagations)
            self.max_locks_seen = max(self.max_locks_seen,
                                      manager.locks.active_locks)

    # -- quiescence ----------------------------------------------------------

    def _quiesce(self, scrubber) -> None:
        """Heal, drain, repair, scrub until base and view agree."""
        cluster = self.cluster
        manager = cluster.view_manager
        self._record_unhealed()
        self._heal_everything()

        # Drain the propagation backlog in bounded windows (the
        # scrubber and monitor are still looping, so run_until_idle
        # would not terminate yet).
        for _round in range(self.max_settle_rounds):
            if manager.pending_propagations == 0:
                break
            self._run_window()

        # Converge replicas so scrub quorum reads see settled rows.
        cluster.env.run(until=cluster.repair_table(SCENARIO_TABLE))
        cluster.env.run(until=cluster.repair_table(self.view.name))

        if scrubber is not None:
            for _round in range(self.max_settle_rounds):
                if (manager.pending_propagations == 0
                        and not divergent_base_keys(cluster, self.view)):
                    break
                self._run_window()
            scrubber.stop()
        self._monitor_stop = True
        cluster.run_until_idle()

        # Scrub repairs and hint replay wrote at quorum; spread them to
        # every replica so converged-state checks see one state.
        cluster.env.run(until=cluster.repair_table(SCENARIO_TABLE))
        cluster.env.run(until=cluster.repair_table(self.view.name))
        cluster.run_until_idle()

        # Cache coherence is driven by the propagation stream; the
        # replica-level anti-entropy above rewrote view rows beneath it,
        # so converged-state judging starts from a cold cache.
        manager.skew.cache.clear()
        self.workload.resolve_ambiguous(cluster)

    def _record_unhealed(self) -> None:
        """Note any damage the stopped adversaries left behind."""
        cluster = self.cluster
        for node in cluster.nodes:
            if node.is_down:
                self.unhealed.append(f"node {node.node_id} still down")
            if node.cpu_slowdown != 1.0:
                self.unhealed.append(
                    f"node {node.node_id} cpu slowdown "
                    f"{node.cpu_slowdown} not restored")
        for a, b in cluster.network.active_partitions():
            self.unhealed.append(f"partition {a}<->{b} not healed")
        for node in cluster.nodes:
            factor = cluster.network.slowdown_of(node.node_id)
            if factor != 1.0:
                self.unhealed.append(
                    f"node {node.node_id} link slowdown {factor} "
                    "not restored")
        for client_id in sorted(self.client_ids):
            skew = cluster.clock_skew_of(client_id)
            if skew:
                self.unhealed.append(
                    f"client {client_id} clock skew {skew:+.1f}ms "
                    "not cleared")
        if self.arrival_scale != 1.0:
            self.unhealed.append(
                f"arrival scale {self.arrival_scale} not restored")

    def _heal_everything(self) -> None:
        """Belt and braces: force the cluster back to nominal."""
        cluster = self.cluster
        for node in cluster.nodes:
            if node.is_down:
                cluster.recover_node(node.node_id)
            cluster.restore_node_speed(node.node_id)
        cluster.network.heal_all()
        cluster.network.clear_all_slowdowns()
        cluster.clear_clock_skews()
        self.arrival_scale = 1.0

    def _run_window(self) -> None:
        env = self.cluster.env
        self.cluster.run(until=env.now + self.settle_window)

    # -- judging -------------------------------------------------------------

    def oracle(self) -> ReferenceViewModel:
        """The Definition 2/3 reference oracle fed with applied updates.

        LWW folding is order-insensitive for the final state, so the
        updates are fed in a canonical (timestamp, key, column) order
        regardless of real interleaving.
        """
        if self._oracle is None:
            self._oracle = ReferenceViewModel(self.view)
            for update in sorted(self.workload.applied,
                                 key=lambda u: (u.timestamp, repr(u.key),
                                                repr(u.column))):
                self._oracle.propagate(update)
        return self._oracle

    def logical_base(self) -> Dict[Hashable, Dict[ColumnName, Cell]]:
        """LWW fold of every applied update (the base-table oracle)."""
        table = LogicalBaseTable()
        columns: Dict[Hashable, set] = {}
        for update in self.workload.applied:
            table.apply(update)
            columns.setdefault(update.key, set()).add(update.column)
        return {key: {column: table.cell(key, column) for column in cols}
                for key, cols in columns.items()}

    def merged_base_state(self) -> Dict[Hashable, Dict[ColumnName, Cell]]:
        """The converged base table: LWW-merged across every node."""
        from repro.common.records import cell_wins

        rows: Dict[Hashable, Dict[ColumnName, Cell]] = {}
        for node in self.cluster.nodes:
            if not node.engine.has_table(SCENARIO_TABLE):
                continue
            for key in node.engine.keys(SCENARIO_TABLE):
                cells = node.engine.read_row(SCENARIO_TABLE, key)
                target = rows.setdefault(key, {})
                for column, cell in cells.items():
                    if column not in target or cell_wins(cell, target[column]):
                        target[column] = cell
        return rows

    def _judge(self, scrubber) -> ScenarioResult:
        violations: List[str] = []
        for invariant in self.invariants:
            violations.extend(f"{invariant.name}: {violation}"
                              for violation in invariant.check(self))
        base_digest = state_digest(self.cluster, SCENARIO_TABLE)
        view_digest = state_digest(self.cluster, self.view.name)
        manager = self.cluster.view_manager
        outcome = hashlib.sha256(
            f"{base_digest}|{view_digest}|{manager.completed_propagations}"
            f"|{manager.lost_propagations}|{manager.abandoned_propagations}"
            f"|{len(self.workload.applied)}".encode("utf-8")).hexdigest()
        return ScenarioResult(
            name=self.name,
            violations=violations,
            stats=self._stats(scrubber),
            base_digest=base_digest,
            view_digest=view_digest,
            digest=outcome,
        )

    def _stats(self, scrubber) -> Dict[str, Any]:
        manager = self.cluster.view_manager
        stats: Dict[str, Any] = {
            "now": self.cluster.env.now,
            "acked_ops": self.workload.acked_ops,
            "unacked_ops": self.workload.unacked_ops,
            "applied_updates": len(self.workload.applied),
            "ambiguous_applied": self.workload.ambiguous_applied,
            "ambiguous_dropped": self.workload.ambiguous_dropped,
            "session_reads": self.workload.reads_done,
            "session_reads_failed": self.workload.reads_failed,
            "bounded_reads": self.workload.bounded_reads_done,
            "bounded_reads_failed": self.workload.bounded_reads_failed,
            "completed_propagations": manager.completed_propagations,
            "lost_propagations": manager.lost_propagations,
            "abandoned_propagations": manager.abandoned_propagations,
            "max_pending_seen": self.max_pending_seen,
            "max_locks_seen": self.max_locks_seen,
            "adversaries": {adversary.label: adversary.describe()
                            for adversary in self.adversaries},
        }
        if self.config.propagation_pipeline == "outbox":
            outbox = manager.outbox_stats()
            stats["outbox"] = {key: outbox[key]
                               for key in ("appended", "coalesced", "depth",
                                           "max_depth", "lag", "folded")}
        if manager.skew.enabled:
            stats["skew"] = manager.skew_stats()
        stats["freshness"] = manager.freshness_stats()
        stats["locks"] = manager.locks.stats()
        if scrubber is not None:
            stats["scrub"] = {
                "rounds": scrubber.metrics.rounds,
                "divergences_found": scrubber.metrics.divergences_found,
                "repairs_applied": scrubber.metrics.repairs_applied,
                "coordinator_switches":
                    scrubber.metrics.coordinator_switches,
            }
        return stats
