"""The standing invariant suite checked after every scenario.

Each :class:`Invariant` inspects a quiesced scenario — adversaries
stopped, faults healed, propagation drained, replicas repaired — and
returns human-readable violation strings (empty list = holds).  The
suite encodes what the paper's design guarantees *whenever the faults
stop*:

``ViewOracleAgreement``
    The converged base table equals the LWW fold of every applied
    update, the view's versioned structure is sound (Definition 3 /
    Theorem 1), and every live view row agrees exactly with the
    :class:`~repro.views.model.ReferenceViewModel` oracle.
``SessionReadYourWrites``
    Every session view-read issued after a session Put observed that
    Put — unless a concurrent higher-timestamp write moved the row, or
    a propagation failure legitimately released the session barrier
    (barriers wait for *resolution*, not success).
``OutboxConservation``
    No propagation vanishes without an accounting entry: appended
    records minus coalesced equals completed + lost + abandoned +
    folded, and the queues are empty at quiescence (inline mode:
    nothing pending).
``SkewDrained``
    Heavy/light maintenance left nothing behind: every folded record
    was either flushed or loudly dropped to the scrubber, and no delta
    chain is still pending after fold + drain.
``BoundedQueueDepth``
    Backpressure held: the propagation backlog never exceeded its
    configured bound, even under burst adversaries.
``NoLeakedLocks``
    The concurrency-control lock service holds no locks once quiesced.
``ClusterHealed``
    Every adversary cleaned up after itself: the runner records any
    partition, slowdown, skew, or down node it had to heal itself at
    quiescence, and this invariant reports them.
``FreshnessBoundHonored``
    Every bounded-staleness view read that claimed its bound actually
    honored it: replayed against the acknowledged-update oracle, the
    result reflects every update acked ``max_staleness_ms`` before the
    read's certificate time (no failure excuse — lost and abandoned
    propagations must be covered by wounds and compensation).
"""

from __future__ import annotations

from typing import List

from repro.freshness import check_bounded_reads
from repro.views.invariants import check_view, live_entries

__all__ = [
    "Invariant",
    "ViewOracleAgreement",
    "SessionReadYourWrites",
    "OutboxConservation",
    "SkewDrained",
    "BoundedQueueDepth",
    "NoLeakedLocks",
    "ClusterHealed",
    "FreshnessBoundHonored",
    "STANDING_INVARIANTS",
]


class Invariant:
    """One post-quiescence property of a scenario."""

    name = "invariant"

    def check(self, scenario) -> List[str]:
        """Return violation strings; an empty list means it holds."""
        raise NotImplementedError


class ViewOracleAgreement(Invariant):
    """Base and view agree with the Definition 2/3 reference oracle."""

    name = "view-oracle"

    def check(self, scenario) -> List[str]:
        violations = list(check_view(scenario.cluster, scenario.view))
        violations.extend(self._check_base(scenario))
        violations.extend(self._check_live_rows(scenario))
        return violations

    @staticmethod
    def _check_base(scenario) -> List[str]:
        """Converged base table == LWW fold of the applied updates."""
        violations = []
        logical = scenario.logical_base()
        actual = scenario.merged_base_state()
        for key in sorted(set(logical) | set(actual), key=repr):
            expected_cells = logical.get(key, {})
            actual_cells = actual.get(key, {})
            for column in sorted(set(expected_cells) | set(actual_cells),
                                 key=repr):
                expected = expected_cells.get(column)
                got = actual_cells.get(column)
                expected_view = (None if expected is None
                                 else (expected.value, expected.timestamp,
                                       expected.tombstone))
                got_view = (None if got is None
                            else (got.value, got.timestamp, got.tombstone))
                if expected_view != got_view:
                    violations.append(
                        f"base {key!r}.{column!r}: stored {got_view!r}, "
                        f"oracle fold expects {expected_view!r}")
        return violations

    @staticmethod
    def _check_live_rows(scenario) -> List[str]:
        """Each base key's live view row matches the oracle exactly."""
        violations = []
        oracle = scenario.oracle()
        live = live_entries(scenario.cluster, scenario.view)
        keys = set(oracle.tracked_base_keys()) | set(live)
        for key in sorted(keys, key=repr):
            expected_live = oracle.live_key_for(key)
            entries = live.get(key, {})
            if expected_live is None:
                if entries:
                    violations.append(
                        f"base key {key!r}: live rows {sorted(entries)!r} "
                        "but the oracle saw no update for it")
                continue
            if list(entries) != [expected_live]:
                violations.append(
                    f"base key {key!r}: live under {sorted(entries)!r}, "
                    f"oracle expects {expected_live!r}")
                continue
            expected_values = oracle.live_values_for(key)
            if expected_values is None:
                continue
            (entry,) = entries.values()
            for column, expected_value in expected_values.items():
                cell = entry.cells.get(column)
                actual = (None if cell is None or cell.is_null
                          else cell.value)
                if actual != expected_value:
                    violations.append(
                        f"base key {key!r}: live {column!r} = {actual!r}, "
                        f"oracle expects {expected_value!r}")
        return violations


class SessionReadYourWrites(Invariant):
    """Session reads observe the session's own propagations.

    A session view-read right after a session Put must return that
    Put's row, except when (a) some applied write to the same base
    key's view-key column carries a higher timestamp — the row
    legitimately moved under LWW — or (b) the run lost or abandoned
    propagations: the paper's barriers release on *resolution*, so a
    failed propagation lets the read proceed without the row (that
    divergence is the scrubber's job, and ``ViewOracleAgreement``
    still pins the final state).  In fault-free runs neither excuse
    fires and the check is exact.
    """

    name = "session-read-your-writes"

    def check(self, scenario) -> List[str]:
        violations = []
        manager = scenario.cluster.view_manager
        failures_excuse = (manager.lost_propagations
                           + manager.abandoned_propagations
                           + manager.skew.dropped_records) > 0
        key_ts = scenario.workload.key_update_timestamps(
            scenario.view.view_key_column)
        for obs in scenario.workload.observations:
            observed = {base_key for base_key, _values in obs.rows}
            if obs.base_key in observed:
                continue
            superseded = any(ts > obs.put_ts
                             for ts in key_ts.get(obs.base_key, ()))
            if superseded or failures_excuse:
                continue
            violations.append(
                f"client {obs.client_id} at t={obs.at:.1f}: read of view "
                f"key {obs.view_key!r} missed own write to base key "
                f"{obs.base_key!r} (ts={obs.put_ts})")
        return violations


class OutboxConservation(Invariant):
    """Every propagation is accounted for and the queues are empty."""

    name = "outbox-conservation"

    def check(self, scenario) -> List[str]:
        manager = scenario.cluster.view_manager
        violations = []
        pending = manager.pending_propagations
        if pending != 0:
            violations.append(
                f"{pending} propagations still pending after quiescence")
        if scenario.cluster.config.propagation_pipeline != "outbox":
            return violations
        stats = manager.outbox_stats()
        if stats["depth"] != 0:
            violations.append(
                f"outbox depth {stats['depth']} != 0 after quiescence")
        if stats["lag"] != 0:
            violations.append(
                f"outbox lag {stats['lag']} != 0 after quiescence")
        resolved = (manager.completed_propagations
                    + manager.lost_propagations
                    + manager.abandoned_propagations
                    + manager.folded_propagations)
        survivors = stats["appended"] - stats["coalesced"]
        if survivors != resolved:
            violations.append(
                f"conservation broken: appended {stats['appended']} - "
                f"coalesced {stats['coalesced']} = {survivors}, but "
                f"completed {manager.completed_propagations} + lost "
                f"{manager.lost_propagations} + abandoned "
                f"{manager.abandoned_propagations} + folded "
                f"{manager.folded_propagations} = {resolved}")
        return violations


class SkewDrained(Invariant):
    """Lazy maintenance fully drained: folded == flushed + dropped."""

    name = "skew-drained"

    def check(self, scenario) -> List[str]:
        skew = scenario.cluster.view_manager.skew
        violations = []
        pending = skew.pending_chains()
        if pending != 0:
            violations.append(
                f"{pending} delta chains still pending after quiescence")
        accounted = skew.flushed_records + skew.dropped_records
        if skew.folded_records != accounted:
            violations.append(
                f"fold accounting broken: folded {skew.folded_records} != "
                f"flushed {skew.flushed_records} + dropped "
                f"{skew.dropped_records}")
        return violations


class BoundedQueueDepth(Invariant):
    """Backpressure held: backlog never exceeded its configured bound."""

    name = "bounded-queue-depth"

    def check(self, scenario) -> List[str]:
        config = scenario.cluster.config
        violations = []
        # Per-coordinator semaphore: total in-flight propagations can
        # reach nodes * max_pending_propagations, never more.
        bound = config.nodes * config.max_pending_propagations
        if scenario.max_pending_seen > bound:
            violations.append(
                f"pending propagations peaked at "
                f"{scenario.max_pending_seen} > bound {bound}")
        if config.propagation_pipeline == "outbox":
            stats = scenario.cluster.view_manager.outbox_stats()
            if stats["max_depth"] > config.max_pending_propagations:
                violations.append(
                    f"outbox max depth {stats['max_depth']} > "
                    f"bound {config.max_pending_propagations}")
        return violations


class NoLeakedLocks(Invariant):
    """The propagation lock service is empty once quiesced."""

    name = "no-leaked-locks"

    def check(self, scenario) -> List[str]:
        locks = scenario.cluster.view_manager.locks
        if locks.active_locks:
            return [f"{locks.active_locks} locks still held or queued "
                    "after quiescence"]
        return []


class ClusterHealed(Invariant):
    """Adversaries healed everything they broke before quiescence."""

    name = "cluster-healed"

    def check(self, scenario) -> List[str]:
        return [f"adversary left damage behind: {item}"
                for item in scenario.unhealed]


class FreshnessBoundHonored(Invariant):
    """Bounded-staleness reads kept their promise against the oracle.

    Checked only after ambiguous Puts are resolved (the runner settles
    them before invariants run): an ambiguous-but-applied Put carries an
    infinite ack time, so it is never *required* by any horizon yet
    still excuses rows it moved.  Unlike the session invariant there is
    deliberately no lost/abandoned-propagation excuse: the freshness
    subsystem exists precisely to cover failures with wounds and
    compensation reads.
    """

    name = "freshness-bound-honored"

    def check(self, scenario) -> List[str]:
        observations = scenario.workload.bounded_observations
        if not observations:
            return []
        return check_bounded_reads(scenario.view, observations,
                                   scenario.workload.applied)


STANDING_INVARIANTS = (
    ViewOracleAgreement(),
    SessionReadYourWrites(),
    OutboxConservation(),
    SkewDrained(),
    BoundedQueueDepth(),
    NoLeakedLocks(),
    ClusterHealed(),
    FreshnessBoundHonored(),
)
