"""Composable adversaries: deterministic fault injectors for scenarios.

An :class:`Adversary` is a reusable fault-injection strategy a
:class:`~repro.scenarios.runner.Scenario` starts alongside its workload
and stops before quiescence.  The contract:

- :meth:`~Adversary.start` spawns simulation processes that inject
  faults, drawing all randomness from a dedicated
  :class:`~repro.sim.rng.RandomStreams` stream derived from the
  adversary's label — so a scenario is bit-for-bit reproducible from
  the cluster seed, and stacking adversaries never perturbs each
  other's random choices.
- :meth:`~Adversary.stop` halts injection and *heals every effect the
  adversary caused* (recovers nodes, heals partitions, restores
  speeds, clears skews).  The runner's ``ClusterHealed`` invariant
  asserts this cleanup actually happened.

Adversaries stack: a scenario runs any list of them concurrently, and
each keeps its own books (cuts it made, nodes it downed) so healing is
scoped to its own damage.  The provided set covers the failure modes
the paper's design must tolerate:

``PartitionStorm``
    Random transient network cuts between node pairs.
``GrayFailure``
    Slow-node gray failures: a node's CPU service times and link
    delays are inflated while it stays up and keeps answering — the
    failure health checks miss.
``ClockSkew``
    Client wall clocks drift by random offsets, so client-supplied
    timestamps (the paper's update ordering) invert relative to issue
    order.
``CrashLoop``
    One node — by default the scrub coordinator — crash-loops: short
    uptime, crash, short downtime, repeat.
``CrashStorm``
    Random node crashes across the cluster; wraps
    :class:`~repro.cluster.chaos.ChaosMonkey`, growing it into the
    composable framework.
``BurstArrivals``
    Open-loop arrival-rate bursts: periodically multiplies the
    workload's arrival rate (via ``Scenario.arrival_scale``), driving
    the propagation backlog toward its backpressure bound.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.cluster.chaos import ChaosMonkey
from repro.sim.latency import LatencyModel, Uniform

__all__ = [
    "Adversary",
    "PartitionStorm",
    "GrayFailure",
    "ClockSkew",
    "CrashLoop",
    "CrashStorm",
    "BurstArrivals",
]


class Adversary:
    """Base class: a start/stop fault injector bound to a scenario."""

    name = "adversary"

    def __init__(self):
        self._stopped = False
        # Unique per scenario run; assigned by Scenario.run() before
        # start() so stacked same-type adversaries get distinct streams.
        self.label = self.name

    def rng(self, scenario):
        """This adversary's dedicated deterministic random stream."""
        return scenario.cluster.streams.stream(f"adversary:{self.label}")

    def start(self, scenario) -> None:
        """Begin injecting faults (spawn simulation processes)."""
        self._stopped = False

    def stop(self, scenario) -> None:
        """Stop injecting and heal every effect this adversary caused."""
        self._stopped = True

    def describe(self) -> str:
        """One-line summary for scenario reports."""
        return self.label


class PartitionStorm(Adversary):
    """Transient random network cuts between node pairs.

    Every ``pause`` (a latency model sample) the storm picks a random
    node pair, cuts it for a ``duration`` sample, then heals it.  At
    most ``max_cuts`` of this storm's cuts are active at once; on a
    4-node, RF=3 cluster the default single cut leaves every quorum
    reachable through the remaining links, so operations must ride it
    out (with retries) rather than fail permanently.
    """

    name = "partition-storm"

    def __init__(self, pause: Optional[LatencyModel] = None,
                 duration: Optional[LatencyModel] = None,
                 max_cuts: int = 1):
        super().__init__()
        if max_cuts < 1:
            raise ValueError("max_cuts must be >= 1")
        self.pause = pause or Uniform(20.0, 60.0)
        self.duration = duration or Uniform(10.0, 40.0)
        self.max_cuts = max_cuts
        self.cuts_made = 0
        self._active: Set[Tuple[int, int]] = set()

    def start(self, scenario) -> None:
        super().start(scenario)
        scenario.cluster.env.process(self._loop(scenario),
                                     name=f"{self.label}-loop")

    def stop(self, scenario) -> None:
        super().stop(scenario)
        for pair in list(self._active):
            self._heal(scenario, pair)

    def _heal(self, scenario, pair: Tuple[int, int]) -> None:
        if pair in self._active:
            self._active.discard(pair)
            scenario.cluster.heal_partition(*pair)

    def _loop(self, scenario):
        cluster = scenario.cluster
        env = cluster.env
        rng = self.rng(scenario)
        nodes = cluster.config.nodes
        while not self._stopped:
            yield env.timeout(self.pause.sample(rng))
            if self._stopped:
                return
            if len(self._active) >= self.max_cuts or nodes < 2:
                continue
            a, b = rng.sample(range(nodes), 2)
            pair = (min(a, b), max(a, b))
            if pair in self._active:
                continue
            cluster.partition(*pair)
            self._active.add(pair)
            self.cuts_made += 1
            env.process(self._heal_later(scenario, pair,
                                         self.duration.sample(rng)),
                        name=f"{self.label}-heal")

    def _heal_later(self, scenario, pair, delay):
        yield scenario.cluster.env.timeout(delay)
        self._heal(scenario, pair)


class GrayFailure(Adversary):
    """Slow-node gray failures: inflated service and link latency.

    Periodically picks a node and multiplies its CPU service times by
    ``cpu_factor`` and its link delays by ``link_factor`` for a
    ``duration`` sample — the node stays up and answers, just late.
    This is the failure mode crash detectors miss: quorum operations
    slow down (the gray node drags its quorums) but must still finish.
    """

    name = "gray-failure"

    def __init__(self, pause: Optional[LatencyModel] = None,
                 duration: Optional[LatencyModel] = None,
                 cpu_factor: float = 8.0, link_factor: float = 8.0,
                 max_slow: int = 1):
        super().__init__()
        if cpu_factor < 1.0 or link_factor < 1.0:
            raise ValueError("slowdown factors must be >= 1")
        if max_slow < 1:
            raise ValueError("max_slow must be >= 1")
        self.pause = pause or Uniform(20.0, 60.0)
        self.duration = duration or Uniform(20.0, 80.0)
        self.cpu_factor = cpu_factor
        self.link_factor = link_factor
        self.max_slow = max_slow
        self.slowdowns_injected = 0
        self._slowed: Set[int] = set()

    def start(self, scenario) -> None:
        super().start(scenario)
        scenario.cluster.env.process(self._loop(scenario),
                                     name=f"{self.label}-loop")

    def stop(self, scenario) -> None:
        super().stop(scenario)
        for node_id in list(self._slowed):
            self._restore(scenario, node_id)

    def _restore(self, scenario, node_id: int) -> None:
        if node_id in self._slowed:
            self._slowed.discard(node_id)
            scenario.cluster.restore_node_speed(node_id)

    def _loop(self, scenario):
        cluster = scenario.cluster
        env = cluster.env
        rng = self.rng(scenario)
        while not self._stopped:
            yield env.timeout(self.pause.sample(rng))
            if self._stopped:
                return
            if len(self._slowed) >= self.max_slow:
                continue
            candidates = [node.node_id for node in cluster.nodes
                          if node.node_id not in self._slowed]
            if not candidates:
                continue
            victim = rng.choice(candidates)
            cluster.slow_node(victim, cpu_factor=self.cpu_factor,
                              link_factor=self.link_factor)
            self._slowed.add(victim)
            self.slowdowns_injected += 1
            env.process(self._restore_later(scenario, victim,
                                            self.duration.sample(rng)),
                        name=f"{self.label}-restore")

    def _restore_later(self, scenario, node_id, delay):
        yield scenario.cluster.env.timeout(delay)
        self._restore(scenario, node_id)


class ClockSkew(Adversary):
    """Drifting client clocks: timestamp order diverges from issue order.

    Every ``pause`` sample, each client the workload has registered
    (``Scenario.client_ids``) gets a fresh uniform offset in
    ``[-max_skew_ms, +max_skew_ms]``.  Timestamp oracles consult the
    skewed clock live, so updates issued later can carry *older*
    timestamps — the adversarial regime for the paper's client-supplied
    LWW ordering, which the oracle agreement invariant must still
    predict exactly.
    """

    name = "clock-skew"

    def __init__(self, pause: Optional[LatencyModel] = None,
                 max_skew_ms: float = 500.0):
        super().__init__()
        if max_skew_ms < 0:
            raise ValueError("max_skew_ms must be non-negative")
        self.pause = pause or Uniform(30.0, 90.0)
        self.max_skew_ms = max_skew_ms
        self.skews_applied = 0
        self._skewed: Set[int] = set()

    def start(self, scenario) -> None:
        super().start(scenario)
        scenario.cluster.env.process(self._loop(scenario),
                                     name=f"{self.label}-loop")

    def stop(self, scenario) -> None:
        super().stop(scenario)
        cluster = scenario.cluster
        for client_id in list(self._skewed):
            cluster.set_clock_skew(client_id, 0.0)
        self._skewed.clear()

    def _loop(self, scenario):
        cluster = scenario.cluster
        env = cluster.env
        rng = self.rng(scenario)
        while not self._stopped:
            yield env.timeout(self.pause.sample(rng))
            if self._stopped:
                return
            for client_id in sorted(scenario.client_ids):
                offset = rng.uniform(-self.max_skew_ms, self.max_skew_ms)
                cluster.set_clock_skew(client_id, offset)
                self._skewed.add(client_id)
                self.skews_applied += 1


class CrashLoop(Adversary):
    """One node crash-loops: up briefly, down briefly, forever.

    The default victim is node 0 — the scrubber's default coordinator —
    so a scenario with a scrubber exercises mid-round coordinator
    re-election (``ScrubMetrics.coordinator_switches``) and repeated
    hint replay on every revival.  The crash is skipped whenever the
    victim is the last node standing.
    """

    name = "crash-loop"

    def __init__(self, victim: int = 0,
                 uptime: Optional[LatencyModel] = None,
                 downtime: Optional[LatencyModel] = None):
        super().__init__()
        self.victim = victim
        self.uptime = uptime or Uniform(30.0, 80.0)
        self.downtime = downtime or Uniform(10.0, 30.0)
        self.kills = 0
        self._downed = False

    def start(self, scenario) -> None:
        super().start(scenario)
        scenario.cluster.node(self.victim)  # validates the id
        scenario.cluster.env.process(self._loop(scenario),
                                     name=f"{self.label}-loop")

    def stop(self, scenario) -> None:
        super().stop(scenario)
        self._revive(scenario)

    def _revive(self, scenario) -> None:
        if self._downed:
            self._downed = False
            if scenario.cluster.node(self.victim).is_down:
                scenario.cluster.recover_node(self.victim)

    def _loop(self, scenario):
        cluster = scenario.cluster
        env = cluster.env
        rng = self.rng(scenario)
        while not self._stopped:
            yield env.timeout(self.uptime.sample(rng))
            if self._stopped:
                return
            alive = [node.node_id for node in cluster.nodes
                     if not node.is_down]
            if self.victim not in alive or len(alive) < 2:
                continue
            cluster.fail_node(self.victim)
            self._downed = True
            self.kills += 1
            yield env.timeout(self.downtime.sample(rng))
            self._revive(scenario)


class CrashStorm(Adversary):
    """Random node crashes cluster-wide, via a wrapped ChaosMonkey.

    Grows :class:`~repro.cluster.chaos.ChaosMonkey` into the composable
    framework: the monkey's random fail/recover loop runs with a
    dedicated stream, and ``stop`` delegates to ``ChaosMonkey.stop``
    (which revives everything it downed, tolerating nodes some other
    adversary's cleanup already revived).
    """

    name = "crash-storm"

    def __init__(self, pause: Optional[LatencyModel] = None,
                 downtime: Optional[LatencyModel] = None,
                 max_down: int = 1,
                 targets: Optional[List[int]] = None):
        super().__init__()
        self.pause = pause
        self.downtime = downtime
        self.max_down = max_down
        self.targets = targets
        self.monkey: Optional[ChaosMonkey] = None

    @property
    def kills(self) -> int:
        return self.monkey.kills if self.monkey is not None else 0

    def start(self, scenario) -> None:
        super().start(scenario)
        self.monkey = ChaosMonkey(
            scenario.cluster,
            rng=self.rng(scenario),
            pause=self.pause,
            downtime=self.downtime,
            max_down=self.max_down,
            targets=self.targets,
        )

    def stop(self, scenario) -> None:
        super().stop(scenario)
        if self.monkey is not None:
            self.monkey.stop()


class BurstArrivals(Adversary):
    """Open-loop arrival bursts: periodically floor the workload gap.

    Multiplies ``Scenario.arrival_scale`` by ``factor`` for a
    ``duration`` sample every ``pause`` sample; cooperative workloads
    divide their inter-arrival gaps by the scale.  Bursts drive the
    propagation backlog toward ``max_pending_propagations``, so the
    bounded-queue-depth invariant is actually load-bearing.
    """

    name = "burst-arrivals"

    def __init__(self, pause: Optional[LatencyModel] = None,
                 duration: Optional[LatencyModel] = None,
                 factor: float = 20.0):
        super().__init__()
        if factor <= 1.0:
            raise ValueError("burst factor must be > 1")
        self.pause = pause or Uniform(40.0, 100.0)
        self.duration = duration or Uniform(20.0, 50.0)
        self.factor = factor
        self.bursts = 0
        self._bursting = False

    def start(self, scenario) -> None:
        super().start(scenario)
        scenario.cluster.env.process(self._loop(scenario),
                                     name=f"{self.label}-loop")

    def stop(self, scenario) -> None:
        super().stop(scenario)
        self._end_burst(scenario)

    def _end_burst(self, scenario) -> None:
        if self._bursting:
            self._bursting = False
            scenario.arrival_scale /= self.factor

    def _loop(self, scenario):
        env = scenario.cluster.env
        rng = self.rng(scenario)
        while not self._stopped:
            yield env.timeout(self.pause.sample(rng))
            if self._stopped:
                return
            if self._bursting:
                continue
            scenario.arrival_scale *= self.factor
            self._bursting = True
            self.bursts += 1
            yield env.timeout(self.duration.sample(rng))
            self._end_burst(scenario)
