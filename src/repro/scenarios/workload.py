"""Scenario workloads: fault-tolerant clients that keep exact books.

A scenario workload is a simulation process that drives Gets and Puts
against the cluster while adversaries rage, and records *exactly* what
it managed to apply so the invariant suite can build the paper's
reference oracle afterwards.  The bookkeeping rules:

- An **acked** Put (the coordinator returned under quorum ``w``) is
  recorded as applied: LWW guarantees it will win or lose purely by
  timestamp, so the oracle must see it.
- A Put that never acked within the retry budget is **ambiguous**: it
  may have reached some replicas before the failure.  At quiescence
  :meth:`BaseWorkload.resolve_ambiguous` scans converged node storage
  for the Put's (unique) timestamp — present anywhere means it will
  spread by LWW and counts as applied; present nowhere means it
  vanished with the failure and is dropped.
- Session reads record :class:`SessionObservation`\\ s for the
  read-your-own-propagations invariant.

Retries follow the chaos-test recipe: same timestamp every attempt
(retrying a Put is idempotent under LWW), rotating coordinators for
ordinary clients, pinned coordinator (with waits) for session clients —
the paper's sessions are bound to one server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import (
    CoordinatorCrashError,
    NodeDownError,
    QuorumError,
    ViewInitTimeoutError,
)
from repro.freshness import BoundedReadObservation
from repro.views.model import BaseUpdate

__all__ = [
    "AmbiguousOp",
    "SessionObservation",
    "BaseWorkload",
    "ScenarioWorkload",
]

# Exceptions a retry loop rides out: the coordinator is down (or died
# mid-operation) or a quorum could not be assembled.
RETRIABLE = (NodeDownError, QuorumError, CoordinatorCrashError)
# Reads additionally ride out an Init-marked row that outlives the spin
# budget (a crashed propagation holds the marker until repair).
READ_RETRIABLE = RETRIABLE + (ViewInitTimeoutError,)


@dataclass
class AmbiguousOp:
    """A Put that never acked; resolved against converged state."""

    table: str
    key: Hashable
    cells: Dict[str, Any]
    timestamp: int


@dataclass
class SessionObservation:
    """One session view-read taken right after a session Put.

    ``rows`` holds, per returned live row, the base key and the
    ``(value, timestamp)`` pair of each requested column.
    """

    client_id: int
    base_key: Hashable
    view_key: Any
    put_ts: int
    at: float
    rows: List[Tuple[Hashable, Dict[str, Tuple[Any, int]]]] = field(
        default_factory=list)


class BaseWorkload:
    """Bookkeeping shared by the random and schedule-driven workloads."""

    def __init__(self):
        self.applied: List[BaseUpdate] = []
        self.ambiguous: List[AmbiguousOp] = []
        self.observations: List[SessionObservation] = []
        self.bounded_observations: List[BoundedReadObservation] = []
        self.acked_ops = 0
        self.unacked_ops = 0
        self.reads_done = 0
        self.reads_failed = 0
        self.bounded_reads_done = 0
        self.bounded_reads_failed = 0
        self.ambiguous_applied = 0
        self.ambiguous_dropped = 0

    def run(self, scenario):
        """The workload simulation process (override)."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- bookkeeping ---------------------------------------------------------

    def record_acked(self, key: Hashable, cells: Dict[str, Any],
                     ts: int, at: float = 0.0) -> None:
        """An acked Put: every cell becomes an oracle update.

        ``at`` is the simulated ack time — the clock bounded-staleness
        promises are audited against.
        """
        self.acked_ops += 1
        for column, value in cells.items():
            self.applied.append(BaseUpdate(key, column, value, ts,
                                           acked_at=at))

    def record_ambiguous(self, table: str, key: Hashable,
                         cells: Dict[str, Any], ts: int) -> None:
        """A Put that exhausted its retry budget without an ack."""
        self.unacked_ops += 1
        self.ambiguous.append(AmbiguousOp(table, key, dict(cells), ts))

    def resolve_ambiguous(self, cluster) -> None:
        """Settle every ambiguous Put against converged node storage.

        Must run after quiescence (all nodes up, hints replayed,
        replicas repaired): a Put's cells all share one unique
        timestamp, so finding any cell with that timestamp on any node
        proves the write landed and will spread by LWW.
        """
        for op in self.ambiguous:
            if self._landed(cluster, op):
                self.ambiguous_applied += 1
                # Never acknowledged: no client was ever promised this
                # write by any time, so the freshness audit must not
                # require it (it still excuses rows it moved).
                for column, value in op.cells.items():
                    self.applied.append(
                        BaseUpdate(op.key, column, value, op.timestamp,
                                   acked_at=float("inf")))
            else:
                self.ambiguous_dropped += 1
        self.ambiguous = []

    @staticmethod
    def _landed(cluster, op: AmbiguousOp) -> bool:
        for node in cluster.nodes:
            if not node.engine.has_table(op.table):
                continue
            cells = node.engine.read_row(op.table, op.key)
            for column in op.cells:
                cell = cells.get(column)
                if cell is not None and cell.timestamp == op.timestamp:
                    return True
        return False

    def key_update_timestamps(self, key_column: str
                              ) -> Dict[Hashable, List[int]]:
        """Per base key, every applied timestamp of the view-key column.

        The session invariant uses this to excuse a read that missed a
        session Put because a concurrent higher-timestamp write moved
        the row.
        """
        per_key: Dict[Hashable, List[int]] = {}
        for update in self.applied:
            if update.column == key_column:
                per_key.setdefault(update.key, []).append(update.timestamp)
        return per_key


class ScenarioWorkload(BaseWorkload):
    """The default randomized mixed workload over the scenario schema.

    ``ops`` operations over ``base_keys`` base rows and ``view_keys``
    view-key values, mixing full Puts (view key + materialized column),
    data-only Puts (UpdateData propagation), view-key deletes (moves to
    the NULL anchor), and session Put+read pairs.  Inter-arrival gaps
    are exponential with mean ``mean_gap``, divided live by the
    scenario's ``arrival_scale`` so a burst adversary can floor them.
    All randomness comes from the cluster's ``scenario-workload``
    stream: one seed fixes the whole history.
    """

    # Staleness bounds (sim-ms) bounded reads draw from: tight enough to
    # force escalations under adversaries, loose enough to also see
    # bound hits.
    BOUNDS = (5.0, 25.0, 100.0, 400.0)

    def __init__(self, *, ops: int = 120, base_keys: int = 6,
                 view_keys: int = 4, mean_gap: float = 3.0,
                 session_fraction: float = 0.25,
                 bounded_read_fraction: float = 0.15, w: int = 2, r: int = 2,
                 max_attempts: int = 40, retry_backoff: float = 5.0,
                 key_chooser=None):
        super().__init__()
        if ops < 1:
            raise ValueError("ops must be >= 1")
        self.ops = ops
        self.base_keys = base_keys
        self.view_keys = view_keys
        # Optional KeyChooser (e.g. ZipfianKeys) replacing the uniform
        # base-key draw — the skew scenarios hammer a hot head this way.
        self.key_chooser = key_chooser
        self.mean_gap = mean_gap
        self.session_fraction = session_fraction
        self.bounded_read_fraction = bounded_read_fraction
        self.w = w
        self.r = r
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff

    def run(self, scenario):
        cluster = scenario.cluster
        env = cluster.env
        rng = cluster.streams.stream("scenario-workload")
        nodes = cluster.config.nodes
        table = scenario.view.base_table
        key_column = scenario.view.view_key_column
        data_column = scenario.view.materialized_columns[0]

        # One rotation handle per coordinator, plus one pinned session
        # client (sessions are bound to a server, paper Section V).
        pool = {cid: cluster.client(coordinator_id=cid)
                for cid in range(nodes)}
        session_client = cluster.client(coordinator_id=0)
        session_client.begin_session()
        scenario.client_ids.update(h.client_id for h in pool.values())
        scenario.client_ids.add(session_client.client_id)

        for i in range(self.ops):
            gap = rng.expovariate(1.0 / self.mean_gap)
            yield env.timeout(gap / max(scenario.arrival_scale, 1e-9))

            if self.key_chooser is not None:
                key = f"k{self.key_chooser.choose(rng)}"
            else:
                key = f"k{rng.randrange(self.base_keys)}"
            if rng.random() < self.session_fraction:
                yield from self._session_op(scenario, session_client,
                                            table, key, i, rng)
                continue
            if rng.random() < self.bounded_read_fraction:
                yield from self._bounded_read(scenario, pool, rng)
                continue

            roll = rng.random()
            if roll < 0.15:
                cells = {key_column: None}
            elif roll < 0.45:
                cells = {data_column: f"m{i}"}
            else:
                cells = {key_column: f"g{rng.randrange(self.view_keys)}",
                         data_column: f"m{i}"}
            handle = pool[rng.randrange(nodes)]
            ts = handle.oracle.next()
            yield from self._rotating_put(scenario, pool, handle, table,
                                          key, cells, ts)

    # -- op drivers ----------------------------------------------------------

    def _rotating_put(self, scenario, pool, handle, table, key, cells, ts):
        """Retry an ordinary Put across coordinators, same timestamp."""
        env = scenario.cluster.env
        nodes = len(pool)
        start = handle.coordinator_id
        for attempt in range(self.max_attempts):
            client = pool[(start + attempt) % nodes]
            try:
                yield from client.put(table, key, cells, self.w,
                                      timestamp=ts)
            except RETRIABLE:
                yield env.timeout(self.retry_backoff)
                continue
            self.record_acked(key, cells, ts, at=env.now)
            return
        self.record_ambiguous(table, key, cells, ts)

    def _bounded_read(self, scenario, pool, rng):
        """A bounded-staleness view read, recorded for the audit."""
        env = scenario.cluster.env
        nodes = len(pool)
        view_key = f"g{rng.randrange(self.view_keys)}"
        bound = self.BOUNDS[rng.randrange(len(self.BOUNDS))]
        columns = scenario.view.materialized_columns
        start = rng.randrange(nodes)
        for attempt in range(self.max_attempts):
            client = pool[(start + attempt) % nodes]
            try:
                fresh = yield from client.get_view_fresh(
                    scenario.view.name, view_key, columns, self.r,
                    max_staleness_ms=bound)
            except READ_RETRIABLE:
                yield env.timeout(self.retry_backoff)
                continue
            self.bounded_reads_done += 1
            self.bounded_observations.append(BoundedReadObservation(
                view_key=view_key, bound_ms=bound,
                as_of=fresh.certificate.as_of,
                rows=tuple((res.base_key, dict(res.values))
                           for res in fresh.results),
                escalated=fresh.escalated,
                bound_met=bool(fresh.certificate.bound_met),
                issued_at=env.now))
            return
        self.bounded_reads_failed += 1

    def _session_op(self, scenario, client, table, key, i, rng):
        """A session Put followed by a session view read of its row."""
        env = scenario.cluster.env
        view_key = f"g{rng.randrange(self.view_keys)}"
        cells = {scenario.view.view_key_column: view_key,
                 scenario.view.materialized_columns[0]: f"s{i}"}
        ts = client.oracle.next()
        for _attempt in range(self.max_attempts):
            try:
                yield from client.put(table, key, cells, self.w,
                                      timestamp=ts)
            except RETRIABLE:
                # Sessions pin their coordinator: wait for it, don't hop.
                yield env.timeout(self.retry_backoff)
                continue
            self.record_acked(key, cells, ts, at=env.now)
            break
        else:
            self.record_ambiguous(table, key, cells, ts)
            return

        columns = scenario.view.materialized_columns
        for _attempt in range(self.max_attempts):
            try:
                results = yield from client.get_view(
                    scenario.view.name, view_key, columns, self.r)
            except READ_RETRIABLE:
                yield env.timeout(self.retry_backoff)
                continue
            self.reads_done += 1
            self.observations.append(SessionObservation(
                client_id=client.client_id, base_key=key,
                view_key=view_key, put_ts=ts, at=env.now,
                rows=[(res.base_key, dict(res.values)) for res in results]))
            return
        self.reads_failed += 1
