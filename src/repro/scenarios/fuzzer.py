"""History fuzzer: random op/fault schedules, replay, ddmin shrinking.

A :class:`Schedule` is a serializable history: timestamped Put /
view-read operations plus timestamped fault injections (crashes,
partitions, gray slowdowns).  Everything about it is explicit —
absolute simulated times and client-supplied update timestamps are
baked into the entries — so a schedule replays bit-for-bit from its
JSON form, and removing entries never shifts the rest (the property
ddmin shrinking depends on).

The pipeline:

- :func:`generate_schedule` derives a schedule from a seed.  Update
  timestamps are a random permutation of issue order, modelling
  arbitrarily skewed client clocks.
- :func:`replay_schedule` executes a schedule through the ordinary
  :class:`~repro.scenarios.runner.Scenario` machinery — the ops become
  a :class:`ScheduleWorkload`, the faults a :class:`ScheduledFaults`
  adversary — and judges the standing invariant suite.  A kernel
  event budget cuts off runaway histories.
- :func:`shrink_schedule` minimizes a failing schedule with ddmin
  (chunk removal at doubling granularity, then a one-at-a-time pass),
  replaying after each candidate removal.
- :func:`fuzz` loops seeds through generate → replay → shrink and
  serializes every shrunk reproducer to disk for triage and for
  committing as a regression fixture (see ``save_reproducer`` /
  ``load_schedule``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.scenarios.adversaries import Adversary
from repro.scenarios.runner import (
    SCENARIO_TABLE,
    Scenario,
    ScenarioResult,
    default_config,
)
from repro.scenarios.workload import (
    READ_RETRIABLE,
    RETRIABLE,
    BaseWorkload,
)
from repro.sim.rng import derive_seed

__all__ = [
    "SCHEDULE_FORMAT",
    "Schedule",
    "ScheduleWorkload",
    "ScheduledFaults",
    "FuzzFailure",
    "generate_schedule",
    "replay_schedule",
    "shrink_schedule",
    "fuzz",
    "save_reproducer",
    "load_schedule",
]

SCHEDULE_FORMAT = 1

# Generated schedules are bounded histories; anything that needs more
# kernel events than this is livelocked, and the replay reports it as
# a violation instead of hanging.
DEFAULT_EVENT_BUDGET = 3_000_000


@dataclass
class Schedule:
    """One serialized history: ops and faults on an absolute clock."""

    seed: int
    pipeline: str = "outbox"
    ops: List[Dict[str, Any]] = field(default_factory=list)
    faults: List[Dict[str, Any]] = field(default_factory=list)

    def entry_count(self) -> int:
        return len(self.ops) + len(self.faults)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SCHEDULE_FORMAT,
            "seed": self.seed,
            "pipeline": self.pipeline,
            "ops": self.ops,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Schedule":
        version = data.get("format", SCHEDULE_FORMAT)
        if version != SCHEDULE_FORMAT:
            raise ValueError(
                f"unsupported schedule format {version!r} "
                f"(expected {SCHEDULE_FORMAT})")
        return cls(seed=data["seed"], pipeline=data["pipeline"],
                   ops=list(data["ops"]), faults=list(data["faults"]))


def generate_schedule(seed: int, *, ops: int = 30, faults: int = 6,
                      horizon: float = 400.0,
                      pipeline: str = "outbox",
                      base_keys: int = 4, view_keys: int = 3) -> Schedule:
    """Derive a random bounded history from ``seed``.

    Puts carry explicit timestamps drawn as a shuffled permutation of
    issue order (times 100): a Put issued later in wall-clock time can
    carry an *older* LWW timestamp, exactly what skewed client clocks
    produce.  Faults are crashes, partitions, and gray slowdowns with
    bounded durations, all healed well inside the horizon.
    """
    rng = random.Random(derive_seed(seed, "scenario-fuzz"))
    schedule = Schedule(seed=seed, pipeline=pipeline)

    n_puts = max(1, round(ops * 0.8))
    ranks = list(range(1, n_puts + 1))
    rng.shuffle(ranks)
    for i in range(ops):
        t = round(rng.uniform(1.0, horizon * 0.75), 1)
        if i < n_puts:
            key = f"k{rng.randrange(base_keys)}"
            roll = rng.random()
            if roll < 0.15:
                cells: Dict[str, Any] = {"vk": None}
            elif roll < 0.4:
                cells = {"m": f"m{i}"}
            else:
                cells = {"vk": f"g{rng.randrange(view_keys)}",
                         "m": f"m{i}"}
            schedule.ops.append({"t": t, "kind": "put", "key": key,
                                 "cells": cells, "ts": ranks[i] * 100})
        else:
            schedule.ops.append({"t": t, "kind": "get_view",
                                 "view_key": f"g{rng.randrange(view_keys)}"})
    for _ in range(faults):
        t = round(rng.uniform(1.0, horizon * 0.6), 1)
        kind = rng.choice(("crash", "partition", "slow", "lose"))
        if kind == "lose":
            # Arm the paper's signature failure: the coordinator crashes
            # mid-propagation, the acked base Put's view update vanishes
            # with its volatile state, and the view silently diverges
            # until the scrubber (if any) heals it.
            schedule.faults.append({
                "t": t, "kind": "lose",
                "count": rng.randrange(1, 3),
                "down": round(rng.uniform(10.0, 40.0), 1)})
        elif kind == "crash":
            schedule.faults.append({
                "t": t, "kind": "crash",
                "node": rng.randrange(4),
                "down": round(rng.uniform(10.0, 60.0), 1)})
        elif kind == "partition":
            a, b = rng.sample(range(4), 2)
            schedule.faults.append({
                "t": t, "kind": "partition",
                "a": min(a, b), "b": max(a, b),
                "duration": round(rng.uniform(10.0, 50.0), 1)})
        else:
            schedule.faults.append({
                "t": t, "kind": "slow",
                "node": rng.randrange(4),
                "cpu": round(rng.uniform(2.0, 10.0), 1),
                "link": round(rng.uniform(2.0, 10.0), 1),
                "duration": round(rng.uniform(10.0, 60.0), 1)})
    schedule.ops.sort(key=lambda e: e["t"])
    schedule.faults.sort(key=lambda e: e["t"])
    return schedule


class ScheduleWorkload(BaseWorkload):
    """Replays a schedule's operation entries at their recorded times.

    Each Put runs as its own child process (a slow retry loop must not
    delay later entries); the workload completes when the timeline is
    exhausted and every child has finished.  Retries rotate
    coordinators with the entry's fixed timestamp, exactly like the
    random workload.
    """

    def __init__(self, ops: List[Dict[str, Any]], *, w: int = 2, r: int = 2,
                 max_attempts: int = 30, retry_backoff: float = 5.0):
        super().__init__()
        self.ops = sorted(ops, key=lambda e: e["t"])
        self.w = w
        self.r = r
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff

    def run(self, scenario):
        cluster = scenario.cluster
        env = cluster.env
        nodes = cluster.config.nodes
        pool = {cid: cluster.client(coordinator_id=cid)
                for cid in range(nodes)}
        scenario.client_ids.update(h.client_id for h in pool.values())
        children = []
        for index, entry in enumerate(self.ops):
            if entry["t"] > env.now:
                yield env.timeout(entry["t"] - env.now)
            if entry["kind"] == "put":
                runner = self._do_put(scenario, pool, index, entry)
            else:
                runner = self._do_read(scenario, pool, index, entry)
            children.append(env.process(runner, name=f"fuzz-op-{index}"))
        for child in children:
            yield child

    def _do_put(self, scenario, pool, index, entry):
        env = scenario.cluster.env
        nodes = len(pool)
        for attempt in range(self.max_attempts):
            client = pool[(index + attempt) % nodes]
            try:
                yield from client.put(SCENARIO_TABLE, entry["key"],
                                      entry["cells"], self.w,
                                      timestamp=entry["ts"])
            except RETRIABLE:
                yield env.timeout(self.retry_backoff)
                continue
            self.record_acked(entry["key"], entry["cells"], entry["ts"],
                              at=env.now)
            return
        self.record_ambiguous(SCENARIO_TABLE, entry["key"], entry["cells"],
                              entry["ts"])

    def _do_read(self, scenario, pool, index, entry):
        env = scenario.cluster.env
        nodes = len(pool)
        for attempt in range(self.max_attempts):
            client = pool[(index + attempt) % nodes]
            try:
                yield from client.get_view(
                    scenario.view.name, entry["view_key"],
                    scenario.view.materialized_columns, self.r)
            except READ_RETRIABLE:
                yield env.timeout(self.retry_backoff)
                continue
            self.reads_done += 1
            return
        self.reads_failed += 1


class ScheduledFaults(Adversary):
    """Injects a schedule's fault entries at their recorded times."""

    name = "scheduled-faults"

    def __init__(self, faults: List[Dict[str, Any]]):
        super().__init__()
        self.faults = sorted(faults, key=lambda e: e["t"])
        self._downed: set = set()
        self._cuts: set = set()
        self._slowed: set = set()
        self._monkey = None

    def start(self, scenario) -> None:
        super().start(scenario)
        scenario.cluster.env.process(self._driver(scenario),
                                     name=f"{self.label}-driver")

    def stop(self, scenario) -> None:
        super().stop(scenario)
        cluster = scenario.cluster
        if self._monkey is not None:
            self._monkey.stop()
            self._monkey = None
        for node_id in sorted(self._downed):
            if cluster.node(node_id).is_down:
                cluster.recover_node(node_id)
        self._downed.clear()
        for pair in sorted(self._cuts):
            cluster.heal_partition(*pair)
        self._cuts.clear()
        for node_id in sorted(self._slowed):
            cluster.restore_node_speed(node_id)
        self._slowed.clear()

    def _driver(self, scenario):
        cluster = scenario.cluster
        env = cluster.env
        for entry in self.faults:
            if entry["t"] > env.now:
                yield env.timeout(entry["t"] - env.now)
            if self._stopped:
                return
            kind = entry["kind"]
            if kind == "lose":
                self._arm_loss(scenario, entry)
            elif kind == "crash":
                self._crash(scenario, entry)
            elif kind == "partition":
                pair = (entry["a"], entry["b"])
                if pair not in self._cuts:
                    cluster.partition(*pair)
                    self._cuts.add(pair)
                    env.process(self._heal_cut(scenario, pair,
                                               entry["duration"]),
                                name=f"{self.label}-heal")
            elif kind == "slow":
                node_id = entry["node"]
                if node_id not in self._slowed:
                    cluster.slow_node(node_id, cpu_factor=entry["cpu"],
                                      link_factor=entry["link"])
                    self._slowed.add(node_id)
                    env.process(self._restore(scenario, node_id,
                                              entry["duration"]),
                                name=f"{self.label}-restore")

    def _arm_loss(self, scenario, entry) -> None:
        """Deterministically lose the next ``count`` propagations."""
        from repro.cluster.chaos import ChaosMonkey

        if self._monkey is None:
            self._monkey = ChaosMonkey(scenario.cluster,
                                       rng=self.rng(scenario), auto=False)
        self._monkey.crash_during_propagation(count=entry["count"],
                                              downtime=entry["down"])

    def _crash(self, scenario, entry) -> None:
        cluster = scenario.cluster
        node_id = entry["node"]
        alive = [node.node_id for node in cluster.nodes if not node.is_down]
        if node_id not in alive or len(alive) < 2:
            return
        cluster.fail_node(node_id)
        self._downed.add(node_id)
        cluster.env.process(self._revive(scenario, node_id, entry["down"]),
                            name=f"{self.label}-revive")

    def _revive(self, scenario, node_id, delay):
        yield scenario.cluster.env.timeout(delay)
        if node_id in self._downed:
            self._downed.discard(node_id)
            if scenario.cluster.node(node_id).is_down:
                scenario.cluster.recover_node(node_id)

    def _heal_cut(self, scenario, pair, delay):
        yield scenario.cluster.env.timeout(delay)
        if pair in self._cuts:
            self._cuts.discard(pair)
            scenario.cluster.heal_partition(*pair)

    def _restore(self, scenario, node_id, delay):
        yield scenario.cluster.env.timeout(delay)
        if node_id in self._slowed:
            self._slowed.discard(node_id)
            scenario.cluster.restore_node_speed(node_id)


def replay_schedule(schedule: Schedule, *, scrub: bool = True,
                    event_budget: int = DEFAULT_EVENT_BUDGET,
                    config_overrides: Optional[Dict[str, Any]] = None
                    ) -> ScenarioResult:
    """Deterministically replay a schedule through the scenario runner.

    Same schedule (and flags) in, same :class:`ScenarioResult` digest
    out — the determinism the shrinker and the committed regression
    fixtures rely on.  ``scrub=False`` replays without the repair
    subsystem, which keeps divergence caused by lost propagations
    visible to the invariant suite instead of healing it.
    """
    config = default_config(seed=schedule.seed, pipeline=schedule.pipeline,
                            **(config_overrides or {}))
    scenario = Scenario(
        name=f"fuzz-{schedule.seed}",
        config=config,
        workload=ScheduleWorkload(schedule.ops),
        adversaries=[ScheduledFaults(schedule.faults)],
        scrub=scrub,
        event_budget=event_budget,
    )
    return scenario.run()


def _default_predicate(result: ScenarioResult) -> bool:
    return not result.ok


def shrink_schedule(schedule: Schedule,
                    predicate: Optional[Callable[[ScenarioResult], bool]]
                    = None,
                    *, scrub: bool = True, max_replays: int = 200
                    ) -> Tuple[Schedule, int]:
    """ddmin: remove entry chunks while the failure reproduces.

    Entries carry absolute times, so removing some never shifts the
    rest — each candidate subset is itself a valid schedule.  Returns
    the minimal schedule found and the number of replays spent.

    ``scrub`` and ``predicate`` must match how the failure was found:
    a divergence the scrubber heals never fails under ``scrub=True``,
    so the full schedule is replayed first and a schedule that does not
    fail at all raises ``ValueError`` instead of silently returning it
    unshrunk.
    """
    predicate = predicate or _default_predicate
    entries = ([("op", entry) for entry in schedule.ops]
               + [("fault", entry) for entry in schedule.faults])
    if not predicate(replay_schedule(schedule, scrub=scrub)):
        raise ValueError(
            "the full schedule does not fail under these settings; "
            "pass the same scrub=/predicate= used when the failure was "
            "found (a scrubber-healable divergence needs scrub=False)")
    replays = 1

    def rebuild(subset) -> Schedule:
        return Schedule(
            seed=schedule.seed, pipeline=schedule.pipeline,
            ops=[entry for kind, entry in subset if kind == "op"],
            faults=[entry for kind, entry in subset if kind == "fault"])

    def still_fails(subset) -> bool:
        nonlocal replays
        replays += 1
        return predicate(replay_schedule(rebuild(subset), scrub=scrub))

    granularity = 2
    while len(entries) >= 2 and replays < max_replays:
        chunk = max(1, len(entries) // granularity)
        reduced = False
        start = 0
        while start < len(entries) and replays < max_replays:
            candidate = entries[:start] + entries[start + chunk:]
            if candidate and still_fails(candidate):
                entries = candidate
                reduced = True
            else:
                start += chunk
        if reduced:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(entries))
    return rebuild(entries), replays


@dataclass
class FuzzFailure:
    """One failing seed with its shrunk reproducer."""

    seed: int
    schedule: Schedule
    result: ScenarioResult
    replays: int
    artifact: Optional[str] = None


def fuzz(seeds, *, ops: int = 30, faults: int = 6, pipeline: str = "outbox",
         scrub: bool = True,
         predicate: Optional[Callable[[ScenarioResult], bool]] = None,
         shrink: bool = True,
         artifacts_dir: Optional[str] = None) -> List[FuzzFailure]:
    """Generate → replay → shrink a batch of seeds; collect failures.

    ``predicate`` decides what counts as failing (default: any
    invariant violation).  With ``artifacts_dir``, every shrunk
    reproducer is serialized there as
    ``reproducer-seed<seed>.json`` — the files CI uploads on failure
    and developers commit as regression fixtures.
    """
    predicate = predicate or _default_predicate
    failures: List[FuzzFailure] = []
    for seed in seeds:
        schedule = generate_schedule(seed, ops=ops, faults=faults,
                                     pipeline=pipeline)
        result = replay_schedule(schedule, scrub=scrub)
        if not predicate(result):
            continue
        replays = 0
        if shrink:
            schedule, replays = shrink_schedule(schedule, predicate,
                                                scrub=scrub)
            result = replay_schedule(schedule, scrub=scrub)
        artifact = None
        if artifacts_dir is not None:
            path = Path(artifacts_dir)
            path.mkdir(parents=True, exist_ok=True)
            artifact = str(path / f"reproducer-seed{seed}.json")
            save_reproducer(artifact, schedule, result)
        failures.append(FuzzFailure(seed=seed, schedule=schedule,
                                    result=result, replays=replays,
                                    artifact=artifact))
    return failures


def save_reproducer(path, schedule: Schedule,
                    result: Optional[ScenarioResult] = None) -> None:
    """Serialize a schedule (plus expected outcome) as JSON."""
    payload = schedule.to_dict()
    if result is not None:
        payload["expect"] = {
            "digest": result.digest,
            "base_digest": result.base_digest,
            "view_digest": result.view_digest,
            "violations": result.violations,
        }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def load_schedule(path) -> Tuple[Schedule, Dict[str, Any]]:
    """Load a serialized schedule; returns ``(schedule, expectations)``.

    ``expectations`` is the ``expect`` block written by
    :func:`save_reproducer` (empty dict if absent).
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return Schedule.from_dict(data), data.get("expect", {})
